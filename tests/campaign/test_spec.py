"""Campaign spec expansion: deterministic, collision-checked."""

import json

import pytest

from repro.campaign.spec import (SPECS, CampaignSpec, CellSpec,
                                 resolve_spec)


def _spec(**kw):
    base = dict(name="t", legs=[{"kind": "noop",
                                 "matrix": {"x": [1, 2]},
                                 "seeds": [0, 1]}])
    base.update(kw)
    return CampaignSpec.from_dict(base)


def test_expand_crosses_matrix_and_seeds():
    cells = _spec().expand()
    assert len(cells) == 4
    assert [(c.param_dict()["x"], c.seed) for c in cells] == [
        (1, 0), (1, 1), (2, 0), (2, 1)]


def test_expand_is_deterministic():
    a = [c.cell_id for c in _spec().expand()]
    b = [c.cell_id for c in _spec().expand()]
    assert a == b


def test_cell_id_depends_on_params_and_seed():
    a = CellSpec.make("noop", {"x": 1}, 0)
    b = CellSpec.make("noop", {"x": 2}, 0)
    c = CellSpec.make("noop", {"x": 1}, 1)
    assert len({a.cell_id, b.cell_id, c.cell_id}) == 3
    # Key order must not matter: the id is canonical.
    d = CellSpec.make("noop", {"b": 2, "a": 1}, 0)
    e = CellSpec.make("noop", {"a": 1, "b": 2}, 0)
    assert d.cell_id == e.cell_id


def test_overlapping_legs_rejected():
    spec = _spec(legs=[
        {"kind": "noop", "matrix": {"x": [1]}, "seeds": [0]},
        {"kind": "noop", "matrix": {"x": [1]}, "seeds": [0]},
    ])
    with pytest.raises(ValueError, match="duplicate cell"):
        spec.expand()


def test_zero_cells_rejected():
    with pytest.raises(ValueError, match="zero cells"):
        _spec(legs=[{"kind": "noop", "matrix": {"x": []}}]).expand()


def test_leg_without_kind_rejected():
    with pytest.raises(ValueError, match="no 'kind'"):
        _spec(legs=[{"matrix": {"x": [1]}}]).expand()


def test_non_list_axis_rejected():
    with pytest.raises(ValueError, match="must be a list"):
        _spec(legs=[{"kind": "noop", "matrix": {"x": 3}}]).expand()


def test_round_trip_through_json(tmp_path):
    spec = _spec()
    path = tmp_path / "spec.json"
    path.write_text(spec.to_json(), encoding="utf-8")
    loaded = resolve_spec(str(path))
    assert [c.cell_id for c in loaded.expand()] == [
        c.cell_id for c in spec.expand()]


def test_resolve_inline_json():
    spec = resolve_spec(json.dumps(_spec().to_dict()))
    assert len(spec.expand()) == 4


def test_resolve_unknown_name_is_named_error():
    with pytest.raises(ValueError, match="built-in specs"):
        resolve_spec("no-such-spec")


def test_builtin_specs_expand():
    for name, make in SPECS.items():
        cells = make().expand()
        assert cells, name
        assert len({c.cell_id for c in cells}) == len(cells), name
    # The CI smoke matrix satisfies the >= 8 cell acceptance floor.
    assert len(SPECS["smoke"]().expand()) >= 8
