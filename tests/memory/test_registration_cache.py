"""Unit tests for the pin-down (registration) cache."""

import pytest

from repro.memory import PinLimitError, PinManager, RegistrationCache


def make_cache(capacity=64 * 1024):
    pm = PinManager(0)
    return RegistrationCache(pm, capacity_bytes=capacity), pm


def test_first_registration_costs_then_hit_is_free():
    rc, _ = make_cache()
    c1 = rc.register(0x1000, 4096)
    c2 = rc.register(0x1000, 4096)
    assert c1 > 0 and c2 == 0.0
    assert rc.hits == 1 and rc.misses == 1


def test_lazy_eviction_when_over_capacity():
    rc, pm = make_cache(capacity=8192)
    rc.register(0x1000, 4096)
    rc.register(0x10_000, 4096)
    cost = rc.register(0x20_000, 4096)  # must evict the LRU region
    assert rc.evictions == 1
    assert cost > 0  # includes the unpin of the victim
    assert not pm.is_pinned(0x1000, 4096)
    assert pm.is_pinned(0x20_000, 4096)


def test_lru_order_recency_protects_hot_regions():
    rc, pm = make_cache(capacity=8192)
    rc.register(0x1000, 4096)
    rc.register(0x10_000, 4096)
    rc.register(0x1000, 4096)  # refresh region 1
    rc.register(0x20_000, 4096)  # evicts region 2, not region 1
    assert pm.is_pinned(0x1000, 4096)
    assert not pm.is_pinned(0x10_000, 4096)


def test_region_larger_than_capacity_rejected():
    rc, _ = make_cache(capacity=4096)
    with pytest.raises(PinLimitError):
        rc.register(0x1000, 8192)


def test_invalidate_on_free_unpins():
    rc, pm = make_cache()
    rc.register(0x1000, 4096)
    cost = rc.invalidate(0x1000, 4096)
    assert cost > 0
    assert not pm.is_pinned(0x1000, 4096)
    assert rc.resident_bytes == 0


def test_hit_rate_reporting():
    rc, _ = make_cache()
    assert rc.hit_rate == 0.0
    rc.register(0x1000, 4096)
    rc.register(0x1000, 4096)
    rc.register(0x1000, 4096)
    assert rc.hit_rate == pytest.approx(2 / 3)


def test_capacity_must_be_positive():
    pm = PinManager(0)
    with pytest.raises(PinLimitError):
        RegistrationCache(pm, capacity_bytes=0)
