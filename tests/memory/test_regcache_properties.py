"""Property tests for the pin-down (registration) cache."""

from hypothesis import given, settings, strategies as st

from repro.memory import PinManager, RegistrationCache


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 20), min_size=1, max_size=60))
def test_property_residency_never_exceeds_capacity(slots):
    """Whatever the registration stream (disjoint per-buffer regions,
    as the transport issues), resident bytes stay within the cache
    budget and match the pin manager's pinned bytes exactly."""
    page = 4096
    capacity = 8 * page
    pm = PinManager(0, page_size=page)
    rc = RegistrationCache(pm, capacity_bytes=capacity)
    for slot in slots:
        size = (slot % 4 + 1) * page   # fixed size per slot → no overlap
        rc.register(0x10_000 + slot * 32 * page, size)
        assert rc.resident_bytes <= capacity
        assert rc.resident_bytes == pm.pinned_bytes
    assert rc.hits + rc.misses == len(slots)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 5), min_size=2, max_size=80))
def test_property_repeat_registrations_hit(stream):
    """Re-registering a resident region is always free and a hit."""
    page = 4096
    pm = PinManager(1, page_size=page)
    rc = RegistrationCache(pm, capacity_bytes=100 * page)
    resident = set()
    for slot in stream:
        vaddr = 0x1000 + slot * 8 * page
        cost = rc.register(vaddr, page)
        if slot in resident:
            assert cost == 0.0
        else:
            assert cost > 0.0
            resident.add(slot)
