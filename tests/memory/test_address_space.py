"""Unit + property tests for the per-node address space."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import AddressSpace, AllocationError


def test_bases_differ_per_node():
    # Figure 2: the same object has a different local address per node.
    spaces = [AddressSpace(n) for n in range(8)]
    bases = {s.base for s in spaces}
    assert len(bases) == 8


def test_allocate_returns_aligned_disjoint_blocks():
    asp = AddressSpace(0)
    a = asp.allocate(100, align=64)
    b = asp.allocate(100, align=64)
    assert a % 64 == 0 and b % 64 == 0
    assert abs(a - b) >= 100


def test_allocation_size_must_be_positive():
    asp = AddressSpace(0)
    with pytest.raises(AllocationError):
        asp.allocate(0)
    with pytest.raises(AllocationError):
        asp.allocate(-5)


def test_alignment_must_be_power_of_two():
    asp = AddressSpace(0)
    with pytest.raises(AllocationError):
        asp.allocate(8, align=24)


def test_free_and_reuse():
    asp = AddressSpace(0)
    a = asp.allocate(4096)
    asp.free(a)
    b = asp.allocate(4096)
    assert b == a  # hole is reused first-fit


def test_double_free_rejected():
    asp = AddressSpace(0)
    a = asp.allocate(16)
    asp.free(a)
    with pytest.raises(AllocationError):
        asp.free(a)


def test_free_unknown_address_rejected():
    asp = AddressSpace(0)
    with pytest.raises(AllocationError):
        asp.free(0xDEAD)


def test_contains_and_size_of():
    asp = AddressSpace(0)
    a = asp.allocate(256)
    assert asp.contains(a, 256)
    assert asp.contains(a + 100, 156)
    assert not asp.contains(a + 100, 157)
    assert asp.size_of(a) == 256


def test_owns_respects_node_range():
    a0, a1 = AddressSpace(0), AddressSpace(1)
    va = a0.allocate(8)
    assert a0.owns(va)
    assert not a1.owns(va)


def test_out_of_memory():
    asp = AddressSpace(0, capacity_bytes=1024)
    asp.allocate(512)
    with pytest.raises(AllocationError):
        asp.allocate(1024)


def test_coalescing_reduces_fragmentation():
    asp = AddressSpace(0)
    blocks = [asp.allocate(128, align=16) for _ in range(8)]
    for b in blocks:
        asp.free(b)
    # All holes coalesce and return to the frontier.
    assert asp.fragmentation == 0.0
    assert asp.allocated_bytes == 0


def test_peak_and_counters():
    asp = AddressSpace(0)
    a = asp.allocate(100)
    b = asp.allocate(50)
    asp.free(a)
    assert asp.peak_bytes == 150
    assert asp.allocated_bytes == 50
    assert asp.alloc_count == 2
    assert asp.free_count == 1
    asp.free(b)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=1,
                max_size=40),
       st.data())
def test_property_blocks_never_overlap_and_accounting_balances(sizes, data):
    """Live blocks stay disjoint and byte accounting is exact under an
    arbitrary interleaving of allocs and frees."""
    asp = AddressSpace(3)
    live = {}
    for i, size in enumerate(sizes):
        va = asp.allocate(size)
        live[va] = size
        # Randomly free one existing block.
        if live and data.draw(st.booleans(), label=f"free_after_{i}"):
            victim = data.draw(st.sampled_from(sorted(live)), label="victim")
            asp.free(victim)
            del live[victim]
    spans = sorted((va, va + sz) for va, sz in live.items())
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2, "live allocations overlap"
    assert asp.allocated_bytes == sum(live.values())
