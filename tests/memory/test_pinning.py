"""Unit + property tests for the pinning model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import (
    NotPinnedError,
    PinCostModel,
    PinLimitError,
    PinManager,
)
from repro.util import MB


def test_pin_returns_positive_cost_and_region():
    pm = PinManager(0)
    cost, regions = pm.pin(0x1000, 8192)
    assert cost > 0
    assert len(regions) == 1
    assert regions[0].covers(0x1000, 8192)
    assert pm.pinned_bytes == 8192


def test_pin_is_idempotent_and_free_second_time():
    # Section 3.1: "once a shared object is pinned it remains pinned".
    pm = PinManager(0)
    c1, _ = pm.pin(0x1000, 4096)
    c2, _ = pm.pin(0x1000, 4096)
    assert c1 > 0 and c2 == 0.0
    assert pm.pinned_bytes == 4096


def test_partial_overlap_only_pins_the_gap():
    pm = PinManager(0)
    pm.pin(0x1000, 4096)
    cost, _ = pm.pin(0x1000, 8192)  # second half is new
    assert cost > 0
    assert pm.pinned_bytes == 8192
    assert pm.is_pinned(0x1000, 8192)


def test_chunking_respects_max_region_bytes():
    # Section 3.2: LAPI limits a single registered handle (32 MB).
    pm = PinManager(0, max_region_bytes=32 * MB)
    _, regions = pm.pin(0x10_0000, 100 * MB)
    assert len(regions) == 4  # 32+32+32+4
    assert all(r.size <= 32 * MB for r in regions)
    assert pm.is_pinned(0x10_0000, 100 * MB)


def test_total_limit_enforced():
    # Section 3.3: GM's DMAable-memory cap (1 GB on the paper's nodes).
    pm = PinManager(0, max_total_bytes=10 * MB)
    pm.pin(0x1000, 6 * MB)
    with pytest.raises(PinLimitError):
        pm.pin(0x4000_0000, 6 * MB)


def test_phys_addr_requires_pin_and_offsets_correctly():
    pm = PinManager(0)
    pm.pin(0x2000, 4096)
    base = pm.phys_addr(0x2000)
    assert pm.phys_addr(0x2100) == base + 0x100
    with pytest.raises(NotPinnedError):
        pm.phys_addr(0x9000)


def test_phys_addr_distinct_across_nodes():
    a, b = PinManager(0), PinManager(1)
    a.pin(0x1000, 64)
    b.pin(0x1000, 64)
    assert a.phys_addr(0x1000) != b.phys_addr(0x1000)


def test_unpin_releases_bytes_and_costs_more_than_pin():
    cm = PinCostModel()
    pm = PinManager(0, cost_model=cm)
    pin_cost, _ = pm.pin(0x1000, 64 * 1024)
    unpin_cost = pm.unpin(0x1000, 64 * 1024)
    assert unpin_cost > pin_cost  # dereg "even more" expensive (3.3)
    assert pm.pinned_bytes == 0
    assert not pm.is_pinned(0x1000, 64 * 1024)


def test_unpin_overlapping_range_removes_whole_regions():
    pm = PinManager(0, max_region_bytes=4096)
    pm.pin(0x1000, 8192)
    pm.unpin(0x1000 + 4096, 1)  # touches only the second chunk
    assert pm.is_pinned(0x1000, 4096)
    assert not pm.is_pinned(0x1000, 8192)


def test_cost_model_scales_with_pages():
    cm = PinCostModel(pin_base_us=10, pin_per_page_us=1.0)
    assert cm.pin_cost(4096, 4096) == 11.0
    assert cm.pin_cost(4097, 4096) == 12.0


def test_pin_size_must_be_positive():
    pm = PinManager(0)
    with pytest.raises(PinLimitError):
        pm.pin(0x1000, 0)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50), st.integers(1, 40)),
                min_size=1, max_size=30))
def test_property_is_pinned_matches_interval_union(ops):
    """is_pinned agrees with a brute-force page-set model under arbitrary
    overlapping pins (addresses in a small page-aligned arena)."""
    page = 16
    pm = PinManager(0, page_size=page)
    pinned_units = set()
    for start_u, len_u in ops:
        vaddr = 0x1000 + start_u * page
        size = len_u * page
        pm.pin(vaddr, size)
        pinned_units.update(range(start_u, start_u + len_u))
    for probe in range(0, 100):
        va = 0x1000 + probe * page
        expect = probe in pinned_units
        assert pm.is_pinned(va, page) == expect
    assert pm.pinned_bytes == len(pinned_units) * page
