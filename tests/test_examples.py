"""Smoke tests: the shipped examples must keep running end-to-end.

The faster examples run their full ``main()``; the slower two are
executed as subprocesses only when REPRO_RUN_SLOW_EXAMPLES=1 (they
take several seconds each) and import-checked otherwise.
"""

import importlib.util
import os
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_quickstart_runs(capsys):
    load("quickstart").main()
    out = capsys.readouterr().out
    assert "improvement" in out
    assert "cache:" in out


def test_heat_stencil_verifies_against_numpy(capsys):
    load("heat_stencil").main()
    out = capsys.readouterr().out
    assert "verified against the serial NumPy reference" in out


def test_tiled_matmul_verifies(capsys):
    load("tiled_matmul").main()
    out = capsys.readouterr().out
    assert "verified against numpy" in out


def test_pipelined_reduction_composes(capsys):
    load("pipelined_reduction").main()
    out = capsys.readouterr().out
    assert "identical in all three runs" in out


@pytest.mark.skipif(
    os.environ.get("REPRO_RUN_SLOW_EXAMPLES", "") in ("", "0"),
    reason="slow examples only with REPRO_RUN_SLOW_EXAMPLES=1")
@pytest.mark.parametrize("name", ["random_access", "distributed_grep"])
def test_slow_examples_run(name):
    import subprocess
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / f"{name}.py")],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr


@pytest.mark.parametrize("name", ["random_access", "distributed_grep"])
def test_slow_examples_importable(name):
    mod = load(name)
    assert hasattr(mod, "main")
