"""Trace-driven studies of the remote address cache in isolation.

The cache is runtime-agnostic, so analytic access patterns can be
pushed through it directly — this is how Figure 8's qualitative
claims can be checked against closed-form expectations without a
simulator in the loop.
"""

import numpy as np
import pytest

from repro.core import EvictionPolicy, RemoteAddressCache
from repro.util.rng import seeded_rng


def drive(cache, nodes_stream, handle="arr"):
    for node in nodes_stream:
        addr, _ = cache.lookup(handle, int(node))
        if addr is None:
            cache.insert(handle, int(node), int(node) + 1)
    return cache.stats.hit_rate


def test_round_robin_within_capacity_is_all_hits_after_warmup():
    c = RemoteAddressCache(capacity=8)
    stream = list(range(8)) * 50
    hit = drive(c, stream)
    # 8 compulsory misses out of 400 accesses.
    assert hit == pytest.approx(1 - 8 / 400)


def test_round_robin_just_over_capacity_thrashes_lru():
    # Classic LRU pathology: cyclic access over capacity+1 keys.
    c = RemoteAddressCache(capacity=8, policy=EvictionPolicy.LRU)
    stream = list(range(9)) * 50
    assert drive(c, stream) == 0.0


def test_random_eviction_survives_cyclic_thrash():
    # RANDOM keeps some residents through the cycle — strictly better
    # than LRU's zero on this adversarial pattern.
    c = RemoteAddressCache(capacity=8, policy=EvictionPolicy.RANDOM,
                           seed=3)
    stream = list(range(9)) * 50
    assert drive(c, stream) > 0.2


def test_uniform_random_hit_rate_tracks_capacity_ratio():
    # Uniform accesses over N nodes with capacity C: steady-state hit
    # rate ~ C/N for LRU.
    rng = seeded_rng(7, 1)
    nnodes, cap = 64, 16
    stream = rng.integers(0, nnodes, size=20_000)
    c = RemoteAddressCache(capacity=cap)
    hit = drive(c, stream)
    assert hit == pytest.approx(cap / nnodes, abs=0.05)


def test_skewed_stream_lru_beats_fifo():
    # 90% of accesses to 4 hot nodes, 10% over 60 cold ones: recency
    # protection must pay off.
    rng = seeded_rng(11, 2)
    hot = rng.integers(0, 4, size=20_000)
    cold = rng.integers(4, 64, size=20_000)
    pick = rng.random(20_000) < 0.9
    stream = np.where(pick, hot, cold)

    lru = RemoteAddressCache(capacity=8, policy=EvictionPolicy.LRU)
    fifo = RemoteAddressCache(capacity=8, policy=EvictionPolicy.FIFO)
    hit_lru = drive(lru, stream)
    hit_fifo = drive(fifo, stream)
    assert hit_lru > hit_fifo
    assert hit_lru > 0.85


def test_two_partner_stream_perfect_after_two_misses():
    # The Neighborhood pattern (Figure 8b): two partners forever.
    c = RemoteAddressCache(capacity=4)
    stream = [1, 2] * 1000
    hit = drive(c, stream)
    assert hit == pytest.approx(1 - 2 / 2000)
