"""Unit tests for pinning policies and piggyback config."""

import pytest

from repro.core import PiggybackConfig, PiggybackMode, PinningPolicy
from repro.core.policy import ranges_to_pin


def test_pin_everything_covers_whole_object():
    # Section 3.1: "the entire memory allocated for a shared object is
    # pinned at once".
    ranges = ranges_to_pin(PinningPolicy.PIN_EVERYTHING,
                           obj_vaddr=0x1000, obj_size=10_000,
                           touch_offset=5, touch_size=8)
    assert ranges == [(0x1000, 10_000)]


def test_chunked_pins_only_touched_chunks():
    ranges = ranges_to_pin(PinningPolicy.CHUNKED,
                           obj_vaddr=0x0, obj_size=100,
                           touch_offset=25, touch_size=2,
                           chunk_bytes=10)
    assert ranges == [(20, 10)]


def test_chunked_touch_spanning_two_chunks():
    ranges = ranges_to_pin(PinningPolicy.CHUNKED,
                           obj_vaddr=0x100, obj_size=100,
                           touch_offset=18, touch_size=4,
                           chunk_bytes=10)
    assert ranges == [(0x100 + 10, 10), (0x100 + 20, 10)]


def test_chunked_final_chunk_clipped_to_object():
    ranges = ranges_to_pin(PinningPolicy.CHUNKED,
                           obj_vaddr=0, obj_size=25,
                           touch_offset=22, touch_size=3,
                           chunk_bytes=10)
    assert ranges == [(20, 5)]


def test_touch_outside_object_rejected():
    with pytest.raises(ValueError):
        ranges_to_pin(PinningPolicy.PIN_EVERYTHING, 0, 10, 8, 4)
    with pytest.raises(ValueError):
        ranges_to_pin(PinningPolicy.CHUNKED, 0, 10, 0, 0)


def test_piggyback_on_data_adds_reply_bytes():
    cfg = PiggybackConfig(mode=PiggybackMode.ON_DATA, extra_bytes=16)
    assert cfg.wants_address
    assert not cfg.needs_dedicated_fetch
    assert cfg.reply_extra_bytes() == 16


def test_piggyback_on_ack_keeps_data_reply_clean():
    cfg = PiggybackConfig(mode=PiggybackMode.ON_ACK)
    assert cfg.wants_address
    assert cfg.reply_extra_bytes() == 0


def test_piggyback_explicit_needs_fetch():
    cfg = PiggybackConfig(mode=PiggybackMode.EXPLICIT)
    assert cfg.needs_dedicated_fetch


def test_piggyback_disabled_requests_nothing():
    cfg = PiggybackConfig(mode=PiggybackMode.DISABLED)
    assert not cfg.wants_address
