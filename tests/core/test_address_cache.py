"""Unit + property tests for the remote address cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import EvictionPolicy, RemoteAddressCache


def test_miss_then_insert_then_hit():
    c = RemoteAddressCache(capacity=10)
    addr, cost = c.lookup("h1", 3)
    assert addr is None and cost > 0
    c.insert("h1", 3, 0xB000)
    addr, _ = c.lookup("h1", 3)
    assert addr == 0xB000
    assert c.stats.hits == 1 and c.stats.misses == 1


def test_same_handle_different_nodes_are_distinct_entries():
    # The key is (SVD handle, node id) — section 3.
    c = RemoteAddressCache(capacity=10)
    c.insert("h1", 1, 0xA)
    c.insert("h1", 2, 0xB)
    assert c.lookup("h1", 1)[0] == 0xA
    assert c.lookup("h1", 2)[0] == 0xB
    assert len(c) == 2


def test_update_existing_entry_counts_as_update():
    c = RemoteAddressCache(capacity=10)
    c.insert("h", 0, 0x1)
    c.insert("h", 0, 0x2)
    assert c.lookup("h", 0)[0] == 0x2
    assert c.stats.insertions == 1 and c.stats.updates == 1
    assert len(c) == 1


def test_lru_eviction_keeps_recently_used():
    c = RemoteAddressCache(capacity=2, policy=EvictionPolicy.LRU)
    c.insert("a", 0, 1)
    c.insert("b", 0, 2)
    c.lookup("a", 0)          # refresh a
    c.insert("c", 0, 3)       # evicts b
    assert ("a", 0) in c and ("c", 0) in c
    assert ("b", 0) not in c
    assert c.stats.evictions == 1


def test_fifo_eviction_ignores_recency():
    c = RemoteAddressCache(capacity=2, policy=EvictionPolicy.FIFO)
    c.insert("a", 0, 1)
    c.insert("b", 0, 2)
    c.lookup("a", 0)          # does not refresh under FIFO
    c.insert("c", 0, 3)       # evicts a (oldest inserted)
    assert ("a", 0) not in c
    assert ("b", 0) in c and ("c", 0) in c


def test_random_eviction_is_deterministic_per_seed():
    def run(seed):
        c = RemoteAddressCache(capacity=3, policy=EvictionPolicy.RANDOM,
                               seed=seed)
        for i in range(10):
            c.insert(f"h{i}", 0, i)
        return tuple(sorted(str(k) for k in c.entries()))

    assert run(7) == run(7)


def test_capacity_zero_stores_nothing():
    c = RemoteAddressCache(capacity=0)
    assert c.insert("h", 0, 1) == 0.0
    assert c.lookup("h", 0)[0] is None
    assert len(c) == 0


def test_disabled_cache_never_hits_and_charges_nothing():
    c = RemoteAddressCache(capacity=100, enabled=False)
    c.insert("h", 0, 1)
    addr, cost = c.lookup("h", 0)
    assert addr is None and cost == 0.0
    assert c.stats.accesses == 0


def test_invalidate_handle_drops_all_nodes():
    # Section 3.1: eager invalidation when the object is deallocated.
    c = RemoteAddressCache(capacity=10)
    for node in range(4):
        c.insert("doomed", node, node)
    c.insert("other", 0, 99)
    dropped = c.invalidate_handle("doomed")
    assert dropped == 4
    assert len(c) == 1
    assert c.lookup("doomed", 2)[0] is None
    assert c.lookup("other", 0)[0] == 99


def test_invalidate_all():
    c = RemoteAddressCache(capacity=10)
    c.insert("a", 0, 1)
    c.insert("b", 1, 2)
    assert c.invalidate_all() == 2
    assert len(c) == 0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        RemoteAddressCache(capacity=-1)


def test_costs_accumulate_in_stats():
    c = RemoteAddressCache(capacity=4, lookup_cost_us=0.1,
                           insert_cost_us=0.2)
    c.lookup("h", 0)
    c.insert("h", 0, 1)
    c.lookup("h", 0)
    assert c.stats.lookup_time_us == pytest.approx(0.2)
    assert c.stats.insert_time_us == pytest.approx(0.2)
    assert c.stats.overhead_us == pytest.approx(0.4)


@settings(max_examples=80, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=8),
    policy=st.sampled_from(list(EvictionPolicy)),
    ops=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 3)), max_size=120
    ),
)
def test_property_never_exceeds_capacity_and_hits_are_correct(
        capacity, policy, ops):
    """Whatever the access stream: |table| <= capacity and a hit always
    returns the last inserted address for that key."""
    c = RemoteAddressCache(capacity=capacity, policy=policy, seed=1)
    shadow = {}
    for handle, node in ops:
        addr, _ = c.lookup(handle, node)
        if addr is not None:
            assert shadow[(handle, node)] == addr
        new_addr = len(shadow) + 1000 + handle
        c.insert(handle, node, new_addr)
        shadow[(handle, node)] = new_addr
        assert len(c) <= capacity


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 30), min_size=1, max_size=200))
def test_property_hit_rate_bounded_and_consistent(stream):
    c = RemoteAddressCache(capacity=10)
    for node in stream:
        addr, _ = c.lookup("arr", node)
        if addr is None:
            c.insert("arr", node, node + 1)
    s = c.stats
    assert s.accesses == len(stream)
    assert 0.0 <= s.hit_rate <= 1.0
    assert s.hits + s.misses == s.accesses


def test_invalidate_unknown_handle_leaves_no_index_residue():
    """Invalidating a handle with zero cached entries — the common case
    under alloc/free churn, where most frees never had a remote
    reader — must not materialize an empty per-handle index set."""
    c = RemoteAddressCache(capacity=10)
    for i in range(1000):
        assert c.invalidate_handle(f"never-cached-{i}") == 0
    assert c._by_handle == {}
    assert len(c) == 0 and c.stats.invalidations == 0


def test_alloc_free_churn_keeps_index_minimal():
    """Interleave inserts and full-handle invalidations; the secondary
    index must track exactly the handles that still own live entries,
    and the dense eviction list must stay in lockstep with the table."""
    c = RemoteAddressCache(capacity=64)
    for gen in range(50):
        h = f"h{gen}"
        for node in range(gen % 4):          # gens 0,4,8,... cache nothing
            c.insert(h, node, 0x1000 + gen * 16 + node)
        dropped = c.invalidate_handle(h)
        assert dropped == gen % 4
        assert c.invalidate_handle(h) == 0   # idempotent, still no residue
    assert c._by_handle == {}
    assert len(c) == 0
    assert c._keys == [] and c._pos == {}
