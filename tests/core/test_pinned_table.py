"""Unit tests for the pinned address table."""

from repro.core import PinnedAddressTable
from repro.memory import PinManager


def make_table(**kw):
    pm = PinManager(0, **kw)
    return PinnedAddressTable(pm), pm


def test_register_pins_and_costs_once():
    t, pm = make_table()
    c1, ok1 = t.register("h", 0x1000, 8192)
    c2, ok2 = t.register("h", 0x1000, 8192)
    assert ok1 and ok2
    assert c1 > 0 and c2 == 0.0
    assert t.is_pinned(0x1000, 8192)
    assert len(t) == 1
    assert t.entry_count_for("h") == 1


def test_register_failure_returns_flag_and_error():
    t, pm = make_table(max_total_bytes=4096)
    cost, ok = t.register("h", 0x1000, 8192)
    assert not ok and cost == 0.0
    assert t.last_pin_error is not None
    assert len(t) == 0 and not t.is_pinned(0x1000, 8192)


def test_unpinnable_mark_cleared_on_unregister():
    t, _ = make_table()
    t.mark_unpinnable("h")
    assert t.is_unpinnable("h") and t.unpinnable_count == 1
    t.unregister_handle("h")
    assert not t.is_unpinnable("h") and t.unpinnable_count == 0


def test_lookup_phys_only_for_pinned():
    t, _ = make_table()
    assert t.lookup_phys(0x5000) is None
    t.register("h", 0x5000, 4096)
    base = t.lookup_phys(0x5000)
    assert base is not None
    assert t.lookup_phys(0x5010) == base + 0x10


def test_chunked_registration_creates_multiple_entries():
    # LAPI-style 32MB handle cap ⇒ several PinnedEntry rows per object.
    t, _ = make_table(max_region_bytes=4096)
    t.register("big", 0x10_000, 3 * 4096)
    assert len(t) == 3
    assert t.entry_count_for("big") == 3


def test_unregister_handle_unpins_and_reports():
    t, pm = make_table()
    t.register("h", 0x1000, 4096)
    t.register("i", 0x9000, 4096)
    cost, removed = t.unregister_handle("h")
    assert cost > 0 and removed == 1
    assert not t.is_pinned(0x1000, 4096)
    assert t.is_pinned(0x9000, 4096)
    assert len(t) == 1


def test_unregister_unknown_handle_is_noop():
    t, _ = make_table()
    cost, removed = t.unregister_handle("ghost")
    assert cost == 0.0 and removed == 0


def test_time_accounting():
    t, _ = make_table()
    t.register("h", 0x1000, 4096)
    t.unregister_handle("h")
    assert t.pin_time_us > 0
    assert t.unpin_time_us > t.pin_time_us  # dereg costs more (3.3)
