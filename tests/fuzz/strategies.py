"""Hypothesis strategies over the fuzz program generator.

The heavy lifting lives in :mod:`repro.testing.generator` — it already
knows how to emit *race-free* programs, which is a global property that
composing hypothesis primitives op-by-op cannot cheaply guarantee.  So
the strategy draws the generator's *inputs* (seed, op budget, thread
count) and lets hypothesis minimize in that space; intra-program
minimization is the job of :func:`repro.testing.shrink.shrink`.
"""

from hypothesis import strategies as st

from repro.testing import Program, generate_program


@st.composite
def programs(draw, min_ops: int = 10, max_ops: int = 80,
             nthreads=(2, 4)) -> Program:
    """A validated, race-free random UPC program."""
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    n_ops = draw(st.integers(min_value=min_ops, max_value=max_ops))
    threads = draw(st.sampled_from(list(nthreads)))
    return generate_program(seed, n_ops=n_ops, nthreads=threads)


@st.composite
def small_programs(draw) -> Program:
    """A cheaper profile for per-example differential replay."""
    return draw(programs(min_ops=10, max_ops=40))
