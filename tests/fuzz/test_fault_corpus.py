"""Fault-mode fuzzing: chaos must not change answers, only timing.

The differential harness replays every generated program against the
flat-memory oracle; with a fault plan installed the runtime retries,
dedups, and degrades its way through the hostile fabric, and the final
state must still match the oracle bit for bit.  Fault seeds derive
from program seeds, so every cell here is a fixed, replayable point.
"""

import pytest

from repro.faults import (POLICIES, PROFILES, FaultPlan, LinkFault,
                          LinkRule, LinkTrace, TraceSegment)
from repro.testing import (
    QUICK_MATRIX,
    config_by_name,
    generate_program,
    run_differential,
)

CHAOS = PROFILES["chaos"]

#: Every link flaps together: three 300 µs loss storms.  Wildcard
#: endpoints so the shape bites whatever cluster size the generated
#: program runs on.
FLAPPING = LinkTrace(seed=11, name="flap-all", links=(
    LinkRule(segments=tuple(
        TraceSegment(t_start=s, t_end=s + 300.0, loss=0.5)
        for s in (100.0, 1100.0, 2100.0))),))


# ---------------------------------------------------------------------------
# Fixed-seed corpus under chaos
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_chaos_corpus_quick_matrix(seed):
    program = generate_program(seed, n_ops=120)
    plan = CHAOS.with_seed(CHAOS.seed + 1000003 * seed)
    divs = run_differential(program, configs=list(QUICK_MATRIX),
                            fault_plan=plan)
    assert not divs, "\n\n".join(d.describe() for d in divs)


@pytest.mark.parametrize("profile", ["drop", "dup", "delay", "stall"])
def test_each_profile_converges_to_oracle(profile):
    # One seed per canned profile so every fault kind stays covered in
    # tier-1, not just the chaos mix.
    program = generate_program(5, n_ops=100)
    plan = PROFILES[profile].with_seed(17)
    points = [config_by_name("gm-base"), config_by_name("gm-nocache")]
    divs = run_differential(program, configs=points, fault_plan=plan)
    assert not divs, "\n\n".join(d.describe() for d in divs)


def test_pin_budget_exhaustion_converges_to_oracle():
    # Everything degrades to AM service and the answers still match.
    program = generate_program(9, n_ops=100)
    plan = FaultPlan(seed=9, pin_budgets=PROFILES["pin"].pin_budgets)
    divs = run_differential(program, configs=[config_by_name("gm-base")],
                            fault_plan=plan)
    assert not divs, "\n\n".join(d.describe() for d in divs)


@pytest.mark.parametrize("policy", POLICIES)
def test_flapping_trace_converges_under_each_policy(policy):
    # The lossy-fabric leg: a time-evolving trace (loss storms on every
    # link) under each repair policy.  Retries, detours, tuning and
    # failover may reshape timing — answers must still match the
    # oracle bit for bit.
    program = generate_program(7, n_ops=100)
    divs = run_differential(program, configs=[config_by_name("gm-base")],
                            link_trace=FLAPPING, repair_policy=policy)
    assert not divs, "\n\n".join(d.describe() for d in divs)


def test_total_drop_window_converges_after_healing():
    # A dead fabric for the first 300 us, then healthy: retransmission
    # must carry every op across the outage.
    program = generate_program(13, n_ops=80)
    plan = FaultPlan(seed=13, links=(
        LinkFault(kind="drop", prob=1.0, t_end=300.0, scope="both"),))
    divs = run_differential(program, configs=[config_by_name("gm-base")],
                            fault_plan=plan)
    assert not divs, "\n\n".join(d.describe() for d in divs)


# ---------------------------------------------------------------------------
# Determinism of the faulted harness
# ---------------------------------------------------------------------------

def test_faulted_run_is_deterministic():
    from dataclasses import replace

    from repro.runtime import Runtime
    from repro.testing.runner import _Driver

    program = generate_program(2, n_ops=80)
    point = config_by_name("gm-base")
    plan = CHAOS.with_seed(21)

    def one():
        cfg = replace(point.runtime_config(program.nthreads,
                                           seed=program.seed or 0),
                      fault_plan=plan)
        rt = Runtime(cfg)
        driver = _Driver(rt, program)
        rt.spawn(driver.kernel)
        return rt.run()

    a, b = one(), one()
    assert a.elapsed_us == b.elapsed_us
    assert a.sim_events == b.sim_events


# ---------------------------------------------------------------------------
# CLI plumbing
# ---------------------------------------------------------------------------

def test_cli_fuzz_faults_smoke(capsys):
    from repro.__main__ import main
    rc = main(["fuzz", "--seed", "0", "--ops", "60", "--quick",
               "--faults"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "OK" in out and "[faults]" in out


def test_cli_fuzz_fault_profile_and_seed(capsys):
    from repro.__main__ import main
    rc = main(["fuzz", "--seed", "1", "--ops", "40",
               "--matrix", "gm-base", "--no-shrink", "--faults",
               "--fault-profile", "drop", "--fault-seed", "99"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "[faults]" in out
