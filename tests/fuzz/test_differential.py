"""Tier-1 entry point for the model-based differential fuzz harness.

Three layers, cheapest first:

* a fixed-seed corpus replayed across the quick config matrix — the
  deterministic regression net (`python -m repro fuzz` sweeps wider);
* a hypothesis property drawing generator inputs and replaying each
  program on two maximally-different configs;
* a mutation check: break cache invalidation on purpose and assert the
  harness both *catches* the bug (as an invariant divergence) and
  *shrinks* it to a handful of ops — guarding the guards.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.address_cache import RemoteAddressCache
from repro.testing import (
    QUICK_MATRIX,
    config_by_name,
    generate_program,
    run_differential,
    run_oracle,
    shrink,
    validate,
)

from tests.fuzz.strategies import small_programs


# ---------------------------------------------------------------------------
# Fixed-seed corpus across the quick matrix
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_fixed_seed_corpus_quick_matrix(seed):
    program = generate_program(seed, n_ops=120)
    divs = run_differential(program, configs=list(QUICK_MATRIX))
    assert not divs, "\n\n".join(d.describe() for d in divs)


def test_full_matrix_single_seed():
    # One seed through every cell, so exotic configs (interrupt
    # progress, piggyback explicit, BG/L) stay covered in tier-1.
    from repro.testing import FULL_MATRIX
    program = generate_program(7, n_ops=80)
    divs = run_differential(program, configs=list(FULL_MATRIX))
    assert not divs, "\n\n".join(d.describe() for d in divs)


def test_generator_is_deterministic_per_seed():
    a = generate_program(11, n_ops=60)
    b = generate_program(11, n_ops=60)
    assert a.dumps() == b.dumps()
    ra, rb = run_oracle(a), run_oracle(b)
    assert set(ra.returns) == set(rb.returns)


# ---------------------------------------------------------------------------
# Property: any generated program agrees with the oracle
# ---------------------------------------------------------------------------

@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=small_programs())
def test_property_differential_vs_oracle(program):
    validate(program)  # race-free by construction; re-check anyway
    points = [config_by_name("gm-base"), config_by_name("lapi-base")]
    divs = run_differential(program, configs=points)
    assert not divs, divs[0].describe()


# ---------------------------------------------------------------------------
# Mutation check: the harness must catch a broken runtime
# ---------------------------------------------------------------------------

def test_mutation_stale_cache_entry_is_caught_and_shrunk(monkeypatch):
    """Disable eager cache invalidation on free; the invariant audit
    must flag the stale entry, and the shrinker must reduce the
    reproducer to <= 10 ops."""
    monkeypatch.setattr(RemoteAddressCache, "invalidate_handle",
                        lambda self, handle: 0)

    points = [config_by_name("gm-base")]
    program = generate_program(0, n_ops=120)
    divs = run_differential(program, configs=points, stop_on_first=True)
    assert divs, "mutated runtime slipped past the differential check"
    assert any(d.kind == "invariant" and "stale" in d.detail
               for d in divs), divs[0].describe()

    def still_fails(candidate):
        return bool(run_differential(candidate, configs=points,
                                     stop_on_first=True))

    small = shrink(program, still_fails)
    assert small.n_ops <= 10, (
        f"shrinker left {small.n_ops} ops:\n{small.dumps(indent=2)}")
    # The minimized program must still be runnable as a reproducer.
    assert still_fails(small)
    snippet = small.to_pytest_snippet(config_name="gm-base")
    assert "run_differential" in snippet and "gm-base" in snippet


def test_mutation_corrupted_put_is_caught(monkeypatch):
    """A runtime that corrupts put payloads must diverge on returned
    values or final contents (not just invariants)."""
    from repro.runtime.ops import OpEngine

    real_put = OpEngine.put

    def corrupting_put(self, thread, array, index, values, nelems=None):
        v = np.asarray(values, dtype=array.dtype)
        if np.issubdtype(v.dtype, np.integer):
            v = v ^ np.asarray(1, dtype=v.dtype)
        else:
            v = v + 1.0
        return real_put(self, thread, array, index, v, nelems=nelems)

    monkeypatch.setattr(OpEngine, "put", corrupting_put)
    points = [config_by_name("gm-base")]
    caught = False
    for seed in range(4):
        program = generate_program(seed, n_ops=120)
        if run_differential(program, configs=points,
                            stop_on_first=True):
            caught = True
            break
    assert caught, "value-corrupting put survived 4 seeds undetected"


# ---------------------------------------------------------------------------
# Flight-recorder capture of failures
# ---------------------------------------------------------------------------

def test_record_flight_dumps_replayable_jsonl(tmp_path):
    from repro.obs import OP_END, load_jsonl
    from repro.testing import record_flight

    program = generate_program(2, n_ops=60)
    path = tmp_path / "flight" / "prog.events.jsonl"
    n = record_flight(program, config_by_name("gm-base"), str(path))
    assert n > 0 and path.exists()
    log = load_jsonl(str(path))
    assert len(log) == n
    assert log.by_kind(OP_END), "replay must record completed ops"


def test_fuzz_trace_dir_captures_failing_program(tmp_path, monkeypatch):
    """On a divergence, ``trace_dir`` gets a flight-recorder log of the
    shrunk reproducer (the CI failure artifact)."""
    from repro.runtime.ops import OpEngine
    from repro.testing import fuzz

    real_put = OpEngine.put

    def corrupting_put(self, thread, array, index, values, nelems=None):
        v = np.asarray(values, dtype=array.dtype)
        if np.issubdtype(v.dtype, np.integer):
            v = v ^ np.asarray(1, dtype=v.dtype)
        else:
            v = v + 1.0
        return real_put(self, thread, array, index, v, nelems=nelems)

    monkeypatch.setattr(OpEngine, "put", corrupting_put)
    trace_dir = tmp_path / "fuzz-traces"
    report = fuzz(range(4), n_ops=120,
                  configs=[config_by_name("gm-base")],
                  shrink_failures=False, trace_dir=str(trace_dir),
                  log=lambda *a, **k: None)
    assert not report.ok, "value-corrupting put survived 4 seeds"
    logs = list(trace_dir.glob("*.events.jsonl"))
    assert logs, "no flight-recorder artifact written on failure"


# ---------------------------------------------------------------------------
# CLI plumbing
# ---------------------------------------------------------------------------

def test_cli_fuzz_smoke(capsys):
    from repro.__main__ import main
    rc = main(["fuzz", "--seed", "0", "--ops", "60", "--quick"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "OK" in out and "configs" in out


def test_cli_seed_range_parsing():
    from repro.__main__ import _parse_seeds
    assert _parse_seeds("7") == [7]
    assert _parse_seeds("0..3") == [0, 1, 2, 3]
    import argparse
    with pytest.raises(argparse.ArgumentTypeError):
        _parse_seeds("5..2")


def test_cli_explicit_matrix_names(capsys):
    from repro.__main__ import main
    rc = main(["fuzz", "--seed", "1", "--ops", "40",
               "--matrix", "gm-base,gm-nocache", "--no-shrink"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "2 configs" in out
