"""Replay the checked-in regression corpus.

``tests/fuzz/corpus/`` holds small programs as JSON: hand-picked
generator outputs plus any shrunk failure the fuzz CLI serialized via
``--corpus`` (``shrunk-seed*.json``).  Each one must load, re-validate
as race-free, and replay cleanly across the quick matrix — so a once-
found bug stays fixed even if the generator drifts and stops emitting
the triggering pattern.
"""

import glob
import os

import pytest

from repro.testing import Program, QUICK_MATRIX, run_differential, validate

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_not_empty():
    assert CORPUS, f"no programs in {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(p) for p in CORPUS])
def test_corpus_program_replays_clean(path):
    with open(path, encoding="utf-8") as fh:
        program = Program.loads(fh.read())
    validate(program)
    divs = run_differential(program, configs=list(QUICK_MATRIX))
    assert not divs, "\n\n".join(d.describe() for d in divs)


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(p) for p in CORPUS])
def test_corpus_json_roundtrip(path):
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    program = Program.loads(text)
    again = Program.loads(program.dumps(indent=2))
    assert program.dumps() == again.dumps()
