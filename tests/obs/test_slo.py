"""SLO monitor: window bucketing, burn-rate math, merge invariance
(the property that makes sharded monitoring layout-invariant) and the
threshold anomaly detectors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.slo import (
    SLO_HIST_BINS,
    SLOMonitor,
    detect_anomalies,
    hist_quantile,
    render_slo,
    slo_summary,
    window_stats,
)


def test_monitor_validation():
    with pytest.raises(ValueError):
        SLOMonitor(0.0)
    with pytest.raises(ValueError):
        SLOMonitor(10.0, window_us=0.0)
    with pytest.raises(ValueError):
        SLOMonitor(10.0, slo_quantile=1.0)


def test_window_bucketing_and_counters():
    mon = SLOMonitor(target_us=10.0, window_us=100.0)
    mon.observe(5.0, 4.0, hit=True)
    mon.observe(99.9, 20.0, inflight=7)          # violation
    mon.observe(100.0, 6.0, retried=True)        # next window
    assert sorted(mon.windows) == [0, 1]
    w0, w1 = mon.windows[0], mon.windows[1]
    assert (w0.count, w0.violations, w0.hits, w0.max_inflight) \
        == (2, 1, 1, 7)
    assert (w1.count, w1.violations, w1.retries) == (1, 0, 1)
    assert mon.digest.count == 3


def test_burn_rate_semantics():
    # At p99, budget is 1%: one violation in 100 burns exactly 1.0.
    mon = SLOMonitor(target_us=10.0, window_us=1e9, slo_quantile=0.99)
    for i in range(99):
        mon.observe(float(i), 1.0)
    mon.observe(99.0, 100.0)
    (w,) = mon.sorted_windows()
    assert mon.burn_rate(w) == pytest.approx(1.0)
    # all-violating window burns 1/budget = 100x
    mon2 = SLOMonitor(target_us=0.5, window_us=1e9)
    mon2.observe(0.0, 1.0)
    assert mon2.burn_rate(mon2.sorted_windows()[0]) \
        == pytest.approx(100.0)


def test_window_quantiles_bound_the_samples():
    mon = SLOMonitor(target_us=50.0, window_us=1e9)
    vals = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
    for i, v in enumerate(vals):
        mon.observe(float(i), v)
    (w,) = mon.sorted_windows()
    # log-bin upper edges: quantile >= true value, within one bin
    assert w.p50() >= 2.0
    assert w.p99() >= 32.0
    assert w.p99() <= 32.0 * 1.07   # bin width ~6.5% at 256 bins
    assert hist_quantile([0] * SLO_HIST_BINS, 0.99) == 0.0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.floats(0.0, 1e5), st.floats(0.2, 1e4),
                          st.booleans()),
                min_size=1, max_size=300),
       st.integers(1, 4))
def test_merge_is_layout_invariant(obs, nshards):
    """Splitting one observation stream across N monitors and merging
    their window exports equals the single-monitor export — the sharded
    SLO contract."""
    whole = SLOMonitor(target_us=25.0, window_us=500.0)
    parts = [SLOMonitor(target_us=25.0, window_us=500.0)
             for _ in range(nshards)]
    for i, (t, lat, hit) in enumerate(obs):
        whole.observe(t, lat, hit=hit, inflight=i % 5)
        parts[i % nshards].observe(t, lat, hit=hit, inflight=i % 5)
    merged = SLOMonitor.merge_window_dicts([p.export() for p in parts])
    assert merged == whole.export()


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(0.2, 1e4), min_size=1, max_size=200))
def test_summary_burn_rate_matches_violation_fraction(lats):
    target = 25.0
    mon = SLOMonitor(target_us=target, window_us=100.0)
    for i, lat in enumerate(lats):
        mon.observe(float(i), lat)
    windows = mon.export()
    s = slo_summary(windows, target_us=target, window_us=100.0)
    frac = sum(1 for v in lats if v > target) / len(lats)
    assert s["count"] == len(lats)
    assert s["violation_frac"] == pytest.approx(frac)
    assert s["burn_rate"] == pytest.approx(frac / 0.01)
    assert 0.0 <= s["hit_rate"] <= 1.0
    # per-window violations sum to the total
    stats = [window_stats(w, target_us=target, window_us=100.0)
             for w in windows]
    assert sum(x["violations"] for x in stats) == s["violations"]
    if s["violations"]:
        assert s["worst_window"]["burn_rate"] \
            == pytest.approx(max(x["burn_rate"] for x in stats))


def _win(index, count, *, violations=0, hits=0, retries=0,
         max_inflight=0, lat_bin=None, lat_n=None):
    hist = [0] * SLO_HIST_BINS
    if lat_bin is not None:
        hist[lat_bin] = lat_n if lat_n is not None else count
    return {"index": index, "count": count, "violations": violations,
            "hits": hits, "retries": retries,
            "max_inflight": max_inflight, "hist": hist}


def test_detect_retry_storm():
    wins = [_win(0, 100, retries=2, lat_bin=10),
            _win(1, 100, retries=20, lat_bin=10)]
    flags = detect_anomalies(wins, target_us=10.0, window_us=100.0)
    storms = [f for f in flags if f["kind"] == "retry_storm"]
    assert [f["index"] for f in storms] == [1]
    assert storms[0]["value"] == pytest.approx(0.2)
    assert storms[0]["t0_us"] == 100.0


def test_detect_backlog_spike():
    wins = [_win(i, 50, max_inflight=10, lat_bin=10) for i in range(5)]
    wins.append(_win(5, 50, max_inflight=90, lat_bin=10))
    flags = detect_anomalies(wins, target_us=10.0, window_us=100.0)
    spikes = [f for f in flags if f["kind"] == "backlog_spike"]
    assert [f["index"] for f in spikes] == [5]
    assert spikes[0]["value"] == 90.0


def test_detect_p99_regression_is_causal():
    # 4 calm windows around bin 50, then a tail blowout at bin 200.
    wins = [_win(i, 100, lat_bin=50) for i in range(4)]
    wins.append(_win(4, 100, lat_bin=200))
    flags = detect_anomalies(wins, target_us=1e6, window_us=100.0)
    regs = [f for f in flags if f["kind"] == "p99_regression"]
    assert [f["index"] for f in regs] == [4]
    # the *first* windows can never be flagged (no warmup history)
    early = detect_anomalies(wins[:3], target_us=1e6, window_us=100.0)
    assert not [f for f in early if f["kind"] == "p99_regression"]


def test_detectors_quiet_on_steady_traffic():
    wins = [_win(i, 100, hits=40, max_inflight=12, lat_bin=40)
            for i in range(8)]
    assert detect_anomalies(wins, target_us=1e6, window_us=100.0) == []


def test_render_slo_mentions_flags_and_truncation():
    wins = [_win(i, 10, lat_bin=40) for i in range(20)]
    s = slo_summary(wins, target_us=10.0, window_us=100.0)
    flags = [{"kind": "retry_storm", "index": 3, "t0_us": 300.0,
              "t1_us": 400.0, "value": 0.5, "threshold": 0.05}]
    text = render_slo(wins, s, flags, max_rows=5)
    assert "retry_storm" in text
    assert "15 more window(s)" in text
    quiet = render_slo(wins[:2], s, [])
    assert "no anomaly flags" in quiet


def test_policy_actions_ride_windows_merge_and_summary():
    mon = SLOMonitor(target_us=10.0, window_us=100.0)
    mon.observe(5.0, 4.0)
    mon.observe_policy_action(50.0)
    mon.observe_policy_action(150.0)   # next window, no completions
    windows = mon.export()
    by_idx = {w["index"]: w for w in windows}
    assert by_idx[0]["policy_actions"] == 1
    assert by_idx[1]["policy_actions"] == 1
    # merging shard exports sums the action counters
    other = SLOMonitor(target_us=10.0, window_us=100.0)
    other.observe_policy_action(60.0)
    merged = SLOMonitor.merge_window_dicts([windows, other.export()])
    m = {w["index"]: w for w in merged}
    assert m[0]["policy_actions"] == 2
    s = slo_summary(merged, target_us=10.0, window_us=100.0)
    assert s["policy_actions"] == 3


def test_detect_policy_flap():
    calm = _win(0, 50, lat_bin=10)
    busy = _win(1, 50, lat_bin=10)
    busy["policy_actions"] = 4
    mild = _win(2, 50, lat_bin=10)
    mild["policy_actions"] = 3         # below the default threshold
    flags = detect_anomalies([calm, busy, mild], target_us=10.0,
                             window_us=100.0)
    flaps = [f for f in flags if f["kind"] == "policy_flap"]
    assert [f["index"] for f in flaps] == [1]
    assert flaps[0]["value"] == 4.0
