"""Shard-aware tracing: merge ordering, cross-shard span joins,
Chrome export, and the zero-cost-when-off contract on the sharded
core (recording on must leave every layout bit-identical)."""

import pytest

from repro.obs.events import (
    BARRIER_ARRIVE,
    BARRIER_RELEASE,
    EventLog,
    OP_BEGIN,
    OP_END,
    SYNC_ROUND,
    XSHARD_RECV,
    XSHARD_SEND,
)
from repro.obs.export import (
    SYNC_TID,
    XSHARD_TID,
    export_chrome_sharded,
    validate_chrome,
)
from repro.obs.shardlog import (
    merge_shard_events,
    pack_events,
    xshard_pairs,
)
from repro.testing.generator import generate_program
from repro.workloads.kv_traffic import TrafficParams, run_kv_traffic
from repro.workloads.sharded import run_corpus_sharded, run_field_sharded

FIELD_NT = 32  # 8 nodes -> shard counts 1/2/4 all divide evenly


def _field(nshards, trace, **kw):
    return run_field_sharded(FIELD_NT, nshards, ntokens=3, probes=2,
                             trace=trace, **kw)


# ---------------------------------------------------------------------------
# merge_shard_events unit behaviour
# ---------------------------------------------------------------------------

def _packed(events):
    """[(t, kind, op, thread, node, attrs), ...] helper."""
    return [(t, k, op, th, nd, at) for t, k, op, th, nd, at in events]


def test_merge_orders_by_time_shard_seq():
    s0 = _packed([(5.0, "a", -1, 0, 0, {}), (5.0, "b", -1, 0, 0, {})])
    s1 = _packed([(1.0, "c", -1, 0, 1, {}), (5.0, "d", -1, 0, 1, {})])
    log = merge_shard_events([s0, s1])
    assert [e.kind for e in log] == ["c", "a", "b", "d"]
    # total order: (t, shard, seq); shard 0 wins ties, and within a
    # shard the log order (seq) is preserved.
    assert [e.attrs["shard"] for e in log] == [1, 0, 0, 1]


def test_merge_remaps_op_ids_collision_free():
    s0 = _packed([(1.0, OP_BEGIN, 3, 0, 0, {}),
                  (2.0, OP_END, 3, 0, 0, {})])
    s1 = _packed([(1.5, OP_BEGIN, 3, 0, 1, {}),
                  (2.5, OP_END, 3, 0, 1, {})])
    log = merge_shard_events([s0, s1])
    ops = {e.op for e in log}
    assert ops == {3 * 2 + 0, 3 * 2 + 1}   # op * nshards + shard
    # negative (unset) op ids stay -1
    log2 = merge_shard_events([_packed([(0.0, "x", -1, 0, 0, {})])])
    assert log2.events[0].op == -1


def test_merge_carries_dropped_count():
    log = merge_shard_events([[], []], dropped=7)
    assert log.dropped_events == 7
    assert len(log) == 0


def test_pack_events_round_trips():
    src = EventLog(enabled=True)
    src.emit(1.0, OP_BEGIN, op=1, thread=2, node=3, name="x")
    src.emit(2.0, OP_END, op=1, thread=2, node=3)
    merged = merge_shard_events([pack_events(src)])
    assert len(merged) == 2
    assert merged.events[0].attrs["name"] == "x"
    assert merged.events[0].attrs["shard"] == 0


def test_xshard_pairs_joins_and_tolerates_missing_halves():
    s0 = _packed([(1.0, XSHARD_SEND, -1, -1, 0,
                   {"src": 0, "seq": 1, "dst": 1}),
                  (1.2, XSHARD_SEND, -1, -1, 0,
                   {"src": 0, "seq": 2, "dst": 1})])
    s1 = _packed([(3.0, XSHARD_RECV, -1, -1, 1,
                   {"src": 0, "seq": 1}),
                  (3.5, XSHARD_RECV, -1, -1, 1,
                   {"src": 0, "seq": 9})])   # orphan recv
    pairs = xshard_pairs(merge_shard_events([s0, s1]))
    assert set(pairs) == {(0, 1), (0, 2), (0, 9)}
    send, recv = pairs[(0, 1)]
    assert send is not None and recv is not None
    assert recv.t - send.t == pytest.approx(2.0)
    assert pairs[(0, 2)][1] is None    # dropped recv half
    assert pairs[(0, 9)][0] is None    # dropped send half


# ---------------------------------------------------------------------------
# Field mix: real merged timelines
# ---------------------------------------------------------------------------

def test_field_sharded_trace_merges_and_joins():
    res = _field(2, trace=True)
    run = res["run"]
    assert len(run.shard_events) == 2
    assert all(batch for batch in run.shard_events)
    log = merge_shard_events(run.shard_events, run.trace_dropped)
    keys = [(e.t, e.attrs["shard"]) for e in log]
    assert keys == sorted(keys)
    kinds = {e.kind for e in log}
    assert {XSHARD_SEND, XSHARD_RECV, SYNC_ROUND, BARRIER_ARRIVE,
            BARRIER_RELEASE, OP_BEGIN, OP_END} <= kinds
    pairs = xshard_pairs(log)
    assert pairs, "field mix must cross shards"
    assert all(s is not None and r is not None
               for s, r in pairs.values()), "unpaired xshard halves"
    for send, recv in pairs.values():
        assert recv.t == pytest.approx(send.attrs["arrival"])
        assert recv.t >= send.t

    # every shard contributed sync-round annotations
    rounds = [e for e in log if e.kind == SYNC_ROUND]
    assert {e.attrs["shard"] for e in rounds} == {0, 1}
    assert any(e.attrs.get("stall") for e in rounds) or rounds


def test_field_trace_max_events_drops_newest():
    res = _field(2, trace=True, trace_max_events=10)
    run = res["run"]
    assert all(len(batch) == 10 for batch in run.shard_events)
    assert run.trace_dropped > 0


def test_export_chrome_sharded_tracks_and_links():
    res = _field(2, trace=True)
    run = res["run"]
    log = merge_shard_events(run.shard_events, run.trace_dropped)
    doc = export_chrome_sharded(log)
    assert validate_chrome(doc) == []
    ev = doc["traceEvents"]
    pids = {e["pid"] for e in ev if e["ph"] != "M"}
    assert pids == {0, 1}, "one Chrome process (track group) per shard"
    names = {e["args"]["name"] for e in ev
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert names == {"shard 0", "shard 1"}
    sync = [e for e in ev if e.get("tid") == SYNC_TID
            and e["ph"] == "X"]
    assert any(e["name"] == "sync_round" for e in sync)
    assert any(e["name"] in ("barrier_arrive", "barrier_release")
               for e in sync)
    links = [e for e in ev if e.get("tid") == XSHARD_TID
             and "link" in e.get("args", {})]
    sends = [e for e in links if e["name"].startswith("xshard:")
             and not e["name"].endswith(":recv")]
    recvs = [e for e in links if e["name"].endswith(":recv")]
    assert sends and recvs
    # linked spans: every send's link key has a recv with the same key
    assert ({e["args"]["link"] for e in sends}
            == {e["args"]["link"] for e in recvs})
    # send spans stretch to the arrival instant
    assert all(e["dur"] > 0 for e in sends)


def test_export_chrome_sharded_writes_file(tmp_path):
    res = _field(2, trace=True)
    run = res["run"]
    log = merge_shard_events(run.shard_events, run.trace_dropped)
    dest = tmp_path / "field.trace.json"
    export_chrome_sharded(log, str(dest))
    assert dest.exists() and dest.stat().st_size > 0


# ---------------------------------------------------------------------------
# zero-cost-when-off: recording must not change any layout's results
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("nshards", [1, 2, 4])
def test_field_bit_identical_with_trace_on(nshards):
    off = _field(nshards, trace=False)
    on = _field(nshards, trace=True)
    assert on["trace"] == off["trace"]
    assert on["field"] == off["field"]
    assert on["digest"] == off["digest"]
    assert on["now"] == off["now"]
    assert on["events"] == off["events"]
    assert not any(off["run"].shard_events), "untraced run shipped events"
    assert any(on["run"].shard_events), "traced run recorded nothing"


def test_field_mp_trace_matches_inproc():
    inproc = _field(2, trace=True, mode="inproc")
    mp = _field(2, trace=True, mode="mp")
    assert mp["digest"] == inproc["digest"]
    assert mp["now"] == inproc["now"]
    assert mp["run"].shard_events == inproc["run"].shard_events, (
        "per-shard packed logs must be transport-independent")


@pytest.mark.parametrize("nshards", [1, 2, 4])
def test_corpus_bit_identical_with_trace_on(nshards):
    program = generate_program(seed=11, n_ops=120, nthreads=4)
    off = run_corpus_sharded(program, nshards)
    on = run_corpus_sharded(program, nshards, trace=True)
    assert on["mem"] == off["mem"]
    assert on["digests"] == off["digests"]
    assert on["finish"] == off["finish"]
    assert on["now"] == off["now"]
    assert on["events"] == off["events"]


@pytest.mark.parametrize("nshards", [1, 2])
def test_kv_traffic_bit_identical_with_trace_on(nshards):
    p = TrafficParams(requests=2000, slo_target_us=30.0,
                      slo_window_us=500.0)
    off = run_kv_traffic(p, nshards)
    on = run_kv_traffic(p, nshards, trace=True)
    assert on.digests == off.digests
    assert on.now == off.now
    assert on.events == off.events
    assert (on.hist == off.hist).all()
    assert on.extra["slo"]["windows"] == off.extra["slo"]["windows"]
    log = merge_shard_events(on.extra["run"].shard_events)
    spans = [e for e in log if e.kind == OP_END]
    assert len(spans) == on.requests
    assert all(e.attrs["fct_us"] > 0 for e in spans)
