"""Tests for the latency-breakdown analyzer.

The differential check of the observability issue: for every analyzed
remote op the component decomposition must sum to the end-to-end
latency (software is the residual, so the sum is exact by
construction — the meaningful invariant is that the *measured*
components never exceed the op's span, i.e. software >= 0).
"""

import pytest

from repro.network import GM_MARENOSTRUM, LAPI_POWER5
from repro.obs import (
    COMP_SOFTWARE,
    COMPONENTS,
    EventLog,
    OP_BEGIN,
    OP_END,
    PHASE,
    collect_breakdowns,
    render_breakdown,
    summarize,
)
from repro.runtime import Runtime, RuntimeConfig


def _synthetic_log():
    log = EventLog()
    log.emit(0.0, OP_BEGIN, op=1, thread=0, node=0, name="get")
    log.emit(2.0, PHASE, op=1, comp="wire", dur=2.0)
    log.emit(5.0, PHASE, op=1, comp="handler", dur=3.0)
    log.emit(7.0, PHASE, op=1, comp="wire", dur=2.0)
    log.emit(10.0, OP_END, op=1, thread=0, node=0, proto="am",
             nbytes=8)
    return log


def test_synthetic_breakdown_components():
    bds = collect_breakdowns(_synthetic_log())
    assert len(bds) == 1
    bd = bds[0]
    assert bd.end_to_end == 10.0
    assert bd.wire == 4.0
    assert bd.handler == 3.0
    assert bd.queue == 0.0
    # software = 10 - (4 + 3) = 3: the residual.
    assert bd.software == pytest.approx(3.0)
    assert sum(bd.components().values()) == pytest.approx(bd.end_to_end)


def test_phases_after_op_end_are_excluded():
    log = _synthetic_log()
    # A detached continuation (e.g. a put tail) lands after op end.
    log.emit(20.0, PHASE, op=1, comp="wire", dur=5.0)
    (bd,) = collect_breakdowns(log)
    assert bd.wire == 4.0


def test_name_and_proto_filters():
    log = _synthetic_log()
    log.emit(11.0, OP_BEGIN, op=2, thread=0, node=0, name="get")
    log.emit(12.0, OP_END, op=2, thread=0, node=0, proto="local")
    assert len(collect_breakdowns(log)) == 1  # local filtered out
    assert len(collect_breakdowns(log, protos=("local",))) == 1
    assert collect_breakdowns(log, names=("put",)) == []


def _run_recorded(machine, nthreads=8, tpn=2, **cfg_kw):
    log = EventLog()
    cfg = RuntimeConfig(machine=machine, nthreads=nthreads,
                        threads_per_node=tpn, seed=1, events=log,
                        **cfg_kw)
    rt = Runtime(cfg)

    def kernel(th):
        arr = yield from th.all_alloc(512, blocksize=16, dtype="u8")
        yield from th.barrier()
        peer = (th.id + th.nthreads // 2) % th.nthreads
        for i in range(10):
            idx = (peer * 16 + i) % 512
            v = yield from th.get(arr, idx)
            yield from th.put(arr, idx, arr.dtype.type(v + 1))
        yield from th.memget(arr, 0, 256)
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()
    return log


@pytest.mark.parametrize("machine", [GM_MARENOSTRUM, LAPI_POWER5])
def test_real_run_components_sum_to_end_to_end(machine):
    log = _run_recorded(machine)
    bds = collect_breakdowns(log)
    assert bds, "remote GETs must have been recorded"
    for bd in bds:
        # Measured phases are disjoint regions of the blocking path:
        # they can never exceed the op's own span.
        assert bd.software >= -1e-9, (
            f"op {bd.op} ({bd.proto}): measured components "
            f"{bd.end_to_end - bd.software:.3f}us exceed end-to-end "
            f"{bd.end_to_end:.3f}us")
        assert sum(bd.components().values()) == pytest.approx(
            bd.end_to_end, rel=1e-9)
    summary = summarize(bds)
    # The acceptance bar: component means sum to the e2e mean within 1%.
    assert summary.component_mean_sum == pytest.approx(
        summary.e2e_mean, rel=0.01)


def test_summary_and_render():
    log = _run_recorded(GM_MARENOSTRUM)
    bds = collect_breakdowns(log)
    s = summarize(bds)
    assert s.n_ops == len(bds)
    assert set(s.by_component) == set(COMPONENTS)
    assert s.by_component[COMP_SOFTWARE].mean > 0  # o_sw is real
    text = render_breakdown(bds)
    assert "software" in text and "wire" in text
    assert "error" in text


def test_render_empty():
    assert "no remote operations" in render_breakdown([])
