"""Tests for the flight-recorder event log itself."""

from repro.obs import (
    EventLog,
    OP_BEGIN,
    OP_END,
    PHASE,
    TraceEvent,
)


def test_disabled_log_records_nothing():
    log = EventLog(enabled=False)
    log.emit(1.0, OP_BEGIN, op=1, name="get")
    assert len(log) == 0
    assert log.dropped_events == 0


def test_emit_and_query():
    log = EventLog()
    a = log.next_op_id()
    b = log.next_op_id()
    assert a != b
    log.emit(1.0, OP_BEGIN, op=a, thread=0, node=0, name="get")
    log.emit(2.0, PHASE, op=a, comp="wire", dur=1.0)
    log.emit(3.0, OP_END, op=a, thread=0, node=0, proto="rdma")
    log.emit(4.0, OP_BEGIN, op=b, thread=1, node=1, name="put")
    assert len(log) == 4
    assert len(log.by_kind(OP_BEGIN)) == 2
    assert len(log.by_op(a)) == 3
    assert log.by_op(a)[1].attrs["comp"] == "wire"


def test_op_spans_pairs_begin_with_end():
    log = EventLog()
    log.emit(1.0, OP_BEGIN, op=1, name="get")
    log.emit(5.0, OP_END, op=1, proto="am")
    log.emit(6.0, OP_BEGIN, op=2, name="get")  # never ends
    spans = log.op_spans()
    assert set(spans) == {1}
    begin, end = spans[1]
    assert begin.t == 1.0 and end.t == 5.0


def test_max_events_drops_newest_and_counts():
    log = EventLog(max_events=2)
    for i in range(5):
        log.emit(float(i), OP_BEGIN, op=i)
    assert len(log) == 2
    assert log.dropped_events == 3
    # The *first* events are the ones kept (drop-newest).
    assert [e.t for e in log] == [0.0, 1.0]


def test_clear_resets():
    log = EventLog(max_events=1)
    log.emit(0.0, OP_BEGIN)
    log.emit(1.0, OP_BEGIN)
    assert log.dropped_events == 1
    log.clear()
    assert len(log) == 0
    assert log.dropped_events == 0


def test_event_equality_is_by_value():
    e1 = TraceEvent(1.0, OP_BEGIN, op=3, attrs={"name": "get"})
    e2 = TraceEvent(1.0, OP_BEGIN, op=3, attrs={"name": "get"})
    e3 = TraceEvent(1.0, OP_BEGIN, op=4, attrs={"name": "get"})
    assert e1 == e2
    assert e1 != e3
