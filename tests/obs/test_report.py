"""The unified run report: CLI round trips through real run
directories produced by ``trace --shards`` and ``kvtraffic
--trace-dir``, plus unit coverage of the analyzers."""

import json

import pytest

from repro.__main__ import main
from repro.obs.events import EventLog, OP_BEGIN, OP_END
from repro.obs.report import (
    build_report,
    op_latency_table,
    render_report,
    shard_rollups,
)


def test_op_latency_table_pairs_spans():
    log = EventLog(enabled=True)
    for i, dur in enumerate((2.0, 4.0)):
        op = log.next_op_id()
        log.emit(10.0 * i, OP_BEGIN, op=op, thread=0, node=0, name="get")
        log.emit(10.0 * i + dur, OP_END, op=op, thread=0, node=0)
    dangling = log.next_op_id()
    log.emit(50.0, OP_BEGIN, op=dangling, thread=0, node=0, name="get")
    (row,) = op_latency_table(log)
    assert row["name"] == "get"
    assert row["count"] == 2          # the dangling begin is ignored
    assert row["mean_us"] == pytest.approx(3.0)
    assert row["max_us"] == pytest.approx(4.0)


def test_shard_rollups_group_by_shard_attr():
    log = EventLog(enabled=True)
    log.emit(1.0, OP_END, op=1, shard=0)
    log.emit(2.0, OP_END, op=2, shard=1)
    log.emit(3.0, "other", shard=1)
    rows = shard_rollups(log)
    assert [r["shard"] for r in rows] == [0, 1]
    assert rows[1]["events"] == 2 and rows[1]["ops"] == 1
    assert rows[1]["t_last_us"] == 3.0


def test_report_on_empty_dir(tmp_path, capsys):
    assert main(["report", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "no recognized artifacts" in out
    assert (tmp_path / "report.txt").exists()
    assert (tmp_path / "report.json").exists()


def test_report_rejects_missing_dir(tmp_path):
    with pytest.raises(SystemExit):
        main(["report", str(tmp_path / "nope")])


@pytest.mark.shard
def test_trace_shards_then_report_round_trip(tmp_path, capsys):
    run_dir = tmp_path / "run"
    assert main(["trace", "field", "--shards", "2", "--nthreads", "16",
                 "--out", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "linked" in out
    assert (run_dir / "field.trace.json").exists()

    assert main(["report", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "cross-shard:" in out
    assert "0 unpaired" in out
    report = json.loads((run_dir / "report.json").read_text())
    (ev,) = report["events"]
    assert {r["shard"] for r in ev["shards"]} == {0, 1}
    assert ev["xshard"]["linked"] == ev["xshard"]["msgs"] > 0
    names = {r["name"] for r in ev["ops"]}
    assert {"fput", "probe", "field_barrier"} <= names


@pytest.mark.shard
def test_kvtraffic_slo_trace_then_report_round_trip(tmp_path, capsys):
    run_dir = tmp_path / "kvrun"
    assert main(["kvtraffic", "--requests", "3000", "--shards", "2",
                 "--slo-target-us", "30", "--slo-window-us", "200",
                 "--trace-dir", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "SLO: burn rate" in out
    for name in ("kvtraffic.events.jsonl", "kvtraffic.trace.json",
                 "slo.json", "shard_summary.json"):
        assert (run_dir / name).exists(), name

    assert main(["report", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "SLO: target 30.0us" in out
    assert "burn rate" in out
    assert "kv_req" in out
    report = json.loads((run_dir / "report.json").read_text())
    assert report["slo"]["summary"]["count"] > 0
    assert report["shard_summary"]["shards"] == 2
    assert isinstance(report["slo"]["anomalies"], list)


def test_trace_shards_rejects_incompatible_flags():
    with pytest.raises(SystemExit):
        main(["trace", "pointer", "--shards", "2"])
    with pytest.raises(SystemExit):
        main(["trace", "field", "--shards", "2", "--breakdown"])
    with pytest.raises(SystemExit):
        main(["trace", "field", "--shards", "2", "--format", "csv"])
    with pytest.raises(SystemExit):
        main(["trace", "field", "--shards", "2",
              "--fault-profile", "drop"])
