"""Counter sampler behaviour + the zero-cost-when-off guarantee."""

import pytest

from repro.network import GM_MARENOSTRUM
from repro.obs import CounterSampler, EventLog
from repro.runtime import Runtime, RuntimeConfig


def _kernel(th):
    arr = yield from th.all_alloc(512, blocksize=16, dtype="u8")
    yield from th.barrier()
    peer = (th.id + th.nthreads // 2) % th.nthreads
    for i in range(8):
        yield from th.get(arr, (peer * 16 + i) % 512)
    yield from th.memget(arr, 0, 256)
    yield from th.barrier()


def _run(events=None, sampler_interval=None):
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=8,
                        threads_per_node=2, seed=1, events=events)
    rt = Runtime(cfg)
    sampler = None
    if sampler_interval is not None:
        sampler = CounterSampler(rt, interval_us=sampler_interval)
        sampler.start()
    rt.spawn(_kernel)
    res = rt.run()
    return res, sampler


def test_recording_does_not_perturb_the_simulation():
    """Virtual time and simulator event counts are bit-identical with
    recording off, on, and absent — emits are pure observations."""
    base, _ = _run(events=None)
    off, _ = _run(events=EventLog(enabled=False))
    on, _ = _run(events=EventLog())
    assert off.elapsed_us == base.elapsed_us
    assert off.sim_events == base.sim_events
    assert on.elapsed_us == base.elapsed_us
    assert on.sim_events == base.sim_events


def test_recording_off_inflation_is_under_5_percent():
    """The acceptance bar, stated as a bound (measured: exactly 0)."""
    base, _ = _run(events=None)
    off, _ = _run(events=EventLog(enabled=False))
    inflation = (off.sim_events - base.sim_events) / base.sim_events
    assert inflation < 0.05


def test_sampler_collects_series_and_lets_the_sim_terminate():
    log = EventLog()
    res, sampler = _run(events=log, sampler_interval=10.0)
    assert len(sampler) > 0
    cache0 = sampler.series("cache_entries", node=0)
    assert cache0, "per-node cache occupancy must be sampled"
    ts = [t for t, _ in cache0]
    assert ts == sorted(ts)
    # The final sample fires on the tick after the last thread
    # finishes, so it may land up to one interval past elapsed_us.
    assert ts[-1] <= res.elapsed_us + 10.0
    bulk = sampler.series("bulk_inflight")
    assert bulk and all(v >= 0 for _, v in bulk)
    # Counter events landed in the log too (for the Chrome export).
    assert log.by_kind("counter")
    # Every node contributes pinned_bytes and am_queue gauges.
    assert sampler.series("pinned_bytes", node=0)
    assert sampler.series("am_queue", node=0)


def test_sampler_does_not_change_virtual_elapsed_time():
    base, _ = _run(events=None)
    sampled, _ = _run(events=EventLog(), sampler_interval=10.0)
    # Sampling adds simulator events (one per tick) but zero virtual
    # time: the program's critical path is untouched.
    assert sampled.elapsed_us == base.elapsed_us
    assert sampled.sim_events > base.sim_events


def test_sampler_rejects_nonpositive_interval():
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=2,
                        threads_per_node=2, seed=1)
    rt = Runtime(cfg)
    with pytest.raises(ValueError):
        CounterSampler(rt, interval_us=0.0)
