"""Round-trip tests for the Chrome and JSONL exporters."""

import io
import json

import pytest

from repro.network import GM_MARENOSTRUM
from repro.obs import (
    CHROME_PHASES,
    EventLog,
    HANDLER_TID,
    OP_END,
    dump_jsonl,
    export_chrome,
    load_jsonl,
    validate_chrome,
)
from repro.runtime import Runtime, RuntimeConfig


def _recorded_run(nthreads=8, tpn=2):
    log = EventLog()
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=nthreads,
                        threads_per_node=tpn, seed=1, events=log)
    rt = Runtime(cfg)

    def kernel(th):
        arr = yield from th.all_alloc(512, blocksize=16, dtype="u8")
        yield from th.barrier()
        peer = (th.id + th.nthreads // 2) % th.nthreads
        for i in range(6):
            idx = (peer * 16 + i) % 512
            yield from th.get(arr, idx)
        yield from th.compute(2.0)
        yield from th.memget(arr, 0, 128)
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()
    return log


# -- Chrome -------------------------------------------------------------

def test_chrome_export_is_valid_and_spans_remote_ops():
    log = _recorded_run()
    doc = export_chrome(log)
    assert validate_chrome(doc) == []
    evs = doc["traceEvents"]
    phases = {e["ph"] for e in evs}
    assert phases <= set(CHROME_PHASES)
    # Non-metadata timestamps are monotone non-decreasing.
    ts = [e["ts"] for e in evs if e["ph"] != "M"]
    assert ts == sorted(ts)
    # Exactly one X span per completed remote op, linked by op_id.
    remote_ends = [e for e in log.by_kind(OP_END)
                   if e.attrs.get("proto") in ("rdma", "am")]
    assert remote_ends, "run must include remote ops"
    span_ids = {e["args"]["op_id"] for e in evs
                if e["ph"] == "X" and "op_id" in e.get("args", ())
                and e["tid"] != HANDLER_TID}
    for end in remote_ends:
        assert end.op in span_ids


def test_chrome_handler_track_links_initiator_to_target():
    log = _recorded_run()
    doc = export_chrome(log)
    evs = doc["traceEvents"]
    handler_spans = [e for e in evs
                     if e["ph"] == "X" and e["tid"] == HANDLER_TID]
    assert handler_spans, "AM handlers must appear on the NIC track"
    thread_ops = {e["args"]["op_id"] for e in evs
                  if e["ph"] == "X" and e["tid"] != HANDLER_TID
                  and "op_id" in e.get("args", ())}
    # Every target-side handler span names an initiator-side op.
    for h in handler_spans:
        assert h["args"]["op_id"] in thread_ops


def test_chrome_barriers_are_balanced_be_pairs():
    log = _recorded_run()
    doc = export_chrome(log)
    evs = doc["traceEvents"]
    b = sum(1 for e in evs
            if e["ph"] == "B" and e["name"].startswith("barrier"))
    e_ = sum(1 for e in evs
             if e["ph"] == "E" and e["name"].startswith("barrier"))
    assert b > 0 and b == e_


def test_chrome_counters_render_as_c_events():
    log = _recorded_run()
    doc = export_chrome(log, counters=[(1.0, 0, "cache_entries", 3.0),
                                       (2.0, -1, "bulk_inflight", 1.0)])
    cs = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert len(cs) == 2
    assert cs[0]["args"]["value"] == 3.0


def test_chrome_export_writes_json(tmp_path):
    log = _recorded_run()
    path = tmp_path / "trace.json"
    export_chrome(log, dest=str(path))
    doc = json.loads(path.read_text())
    assert validate_chrome(doc) == []


def test_validate_chrome_rejects_malformed():
    assert validate_chrome([]) != []
    assert validate_chrome({"traceEvents": [{"ph": "Q", "ts": 0,
                                             "name": "x"}]}) != []
    bad_ts = {"traceEvents": [
        {"ph": "X", "ts": 5, "dur": 1, "name": "a", "pid": 0, "tid": 0},
        {"ph": "X", "ts": 2, "dur": 1, "name": "b", "pid": 0, "tid": 0},
    ]}
    assert any("monotone" in p for p in validate_chrome(bad_ts))
    unbalanced = {"traceEvents": [
        {"ph": "E", "ts": 1, "name": "a", "pid": 0, "tid": 0}]}
    assert any("without matching B" in p
               for p in validate_chrome(unbalanced))
    open_b = {"traceEvents": [
        {"ph": "B", "ts": 1, "name": "a", "pid": 0, "tid": 0}]}
    assert any("unclosed" in p for p in validate_chrome(open_b))


# -- JSONL --------------------------------------------------------------

def test_jsonl_round_trip_reproduces_the_log():
    log = _recorded_run()
    buf = io.StringIO()
    n = dump_jsonl(log, buf)
    assert n == len(log)
    buf.seek(0)
    back = load_jsonl(buf)
    assert len(back) == len(log)
    for orig, copy in zip(log, back):
        assert orig.key() == copy.key()


def test_jsonl_round_trip_preserves_dropped_count(tmp_path):
    log = EventLog(max_events=1)
    log.emit(0.0, "op_begin", op=1, name="get")
    log.emit(1.0, "op_end", op=1, proto="am")
    path = tmp_path / "events.jsonl"
    n = dump_jsonl(log, str(path))
    assert n == 2  # one event + the meta line
    back = load_jsonl(str(path))
    assert len(back) == 1
    assert back.dropped_events == 1


def test_chrome_export_from_reloaded_log_is_identical():
    log = _recorded_run()
    buf = io.StringIO()
    dump_jsonl(log, buf)
    buf.seek(0)
    back = load_jsonl(buf)
    assert export_chrome(log) == export_chrome(back)
