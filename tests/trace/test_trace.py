"""Tests for the Paraver-style tracer and its runtime integration."""

import pytest

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig
from repro.trace import (
    StateRecord,
    Tracer,
    find_outliers,
    profile,
    render_profile,
)
from repro.workloads import FieldParams, run_field


def test_record_and_query():
    t = Tracer()
    t.record(0, "compute", 0.0, 5.0)
    t.record(1, "get:am", 5.0, 9.0)
    t.record(0, "compute", 9.0, 10.0)
    assert len(t) == 3
    assert len(t.by_state("compute")) == 2
    assert len(t.by_thread(1)) == 1
    assert t.by_state("get:am")[0].duration == 4.0


def test_invalid_interval_rejected():
    with pytest.raises(ValueError):
        StateRecord(thread=0, state="x", t0=5.0, t1=3.0)


def test_max_records_bounds_memory():
    t = Tracer(max_records=2)
    for i in range(5):
        t.record(0, "compute", i, i + 1)
    assert len(t) == 2
    assert t.dropped_records == 3


def test_disabled_tracer_records_nothing():
    t = Tracer()
    t.enabled = False
    t.record(0, "compute", 0, 1)
    assert len(t) == 0


def test_profile_time_by_state():
    t = Tracer()
    t.record(0, "compute", 0, 8)
    t.record(0, "get:am", 8, 10)
    prof = profile(t)
    assert prof.total_time == 10.0
    assert prof.fraction("compute") == pytest.approx(0.8)
    assert prof.fraction("get:am") == pytest.approx(0.2)
    assert prof.fraction("missing") == 0.0


def test_find_outliers():
    t = Tracer()
    for i in range(10):
        t.record(0, "get:am", i, i + 1.0)   # duration 1
    t.record(0, "get:am", 100, 150)         # duration 50: outlier
    out = find_outliers(t, "get:am", factor=4.0)
    assert len(out) == 1
    assert out[0].duration == 50.0
    assert find_outliers(t, "nothing") == []


def _bimodal_tracer():
    """90 fast cache-hit GETs (1us) + 10 slow miss GETs (20us)."""
    t = Tracer()
    now = 0.0
    for _ in range(90):
        t.record(0, "get:rdma", now, now + 1.0)
        now += 1.0
    for _ in range(10):
        t.record(0, "get:rdma", now, now + 20.0)
        now += 20.0
    return t


def test_find_outliers_mean_factor_on_bimodal_trace():
    t = _bimodal_tracer()
    # mean = (90*1 + 10*20)/100 = 2.9us; factor 4 -> threshold 11.6us:
    # the mean-relative detector flags the entire slow mode.
    out = find_outliers(t, "get:rdma", factor=4.0)
    assert len(out) == 10
    assert all(r.duration == 20.0 for r in out)


def test_find_outliers_percentile_on_bimodal_trace():
    t = _bimodal_tracer()
    # p=95 lands inside the slow mode (threshold 20us), so only
    # records strictly above it qualify: none here...
    assert find_outliers(t, "get:rdma", p=95) == []
    # ...while p=89 sits at the fast/slow boundary and flags exactly
    # the slow mode.
    out = find_outliers(t, "get:rdma", p=89)
    assert len(out) == 10
    # A single 200us straggler is what p=99 is for.
    t.record(0, "get:rdma", 1000.0, 1200.0)
    out = find_outliers(t, "get:rdma", p=99)
    assert [r.duration for r in out] == [200.0]


def test_find_outliers_percentile_validation():
    t = _bimodal_tracer()
    with pytest.raises(ValueError):
        find_outliers(t, "get:rdma", p=101)


def test_render_profile_is_tabular():
    t = Tracer()
    t.record(0, "compute", 0, 4)
    text = render_profile(t)
    assert "compute" in text and "share" in text
    assert "dropped" not in text


def test_render_profile_reports_dropped_records():
    t = Tracer(max_records=2)
    for i in range(5):
        t.record(0, "compute", i, i + 1)
    text = render_profile(t)
    assert "3 record(s) dropped" in text
    assert "max_records=2" in text


def test_runtime_integration_records_ops():
    tracer = Tracer()
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=8,
                        threads_per_node=4, tracer=tracer, seed=1)
    rt = Runtime(cfg)

    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        yield from th.compute(3.0)
        if th.id == 0:
            yield from th.get(arr, 40)   # remote: am (first touch)
            yield from th.get(arr, 41)   # remote: rdma (hit)
            yield from th.get(arr, 1)    # local
            yield from th.get(arr, 10)   # shm
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()
    states = {r.state for r in tracer}
    assert {"compute", "barrier", "get:am", "get:rdma", "get:local",
            "get:shm"} <= states
    # The RDMA get must be faster than the AM get it followed.
    am = tracer.by_state("get:am")[0]
    rdma = tracer.by_state("get:rdma")[0]
    assert rdma.duration < am.duration


def test_paraver_finding_field_overhang_outliers():
    """Reproduce the paper's trace analysis: uncached Field on GM has
    abnormally large overhang GETs (section 4.6)."""
    tracer = Tracer()
    params = FieldParams(
        machine=GM_MARENOSTRUM, nthreads=16, threads_per_node=4,
        cache_enabled=False, seed=1, nelems=16 * 1024,
        ntokens=6, tracer=tracer)
    run_field(params)
    get_states = [r for r in tracer
                  if r.state in ("get:am", "get:rdma")]
    assert get_states, "field must do remote gets"
    durations = sorted(r.duration for r in get_states)
    # Heavy tail: the slowest uncached overhang GET dwarfs the median.
    assert durations[-1] > 4 * durations[len(durations) // 2]
