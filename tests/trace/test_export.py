"""Round-trip tests for trace export/import."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace import Tracer, dumps, loads
from repro.trace.export import load_csv
import io


def sample_tracer():
    t = Tracer()
    t.record(0, "compute", 0.0, 5.5)
    t.record(1, "get:am", 5.5, 9.25)
    t.record(0, "barrier", 9.25, 12.0)
    return t


def test_roundtrip_preserves_records():
    t = sample_tracer()
    t2 = loads(dumps(t))
    assert len(t2) == len(t)
    assert [r.__dict__ if hasattr(r, "__dict__") else
            (r.thread, r.state, r.t0, r.t1) for r in t2]
    for a, b in zip(t, t2):
        assert (a.thread, a.state, a.t0, a.t1) == \
            (b.thread, b.state, b.t0, b.t1)


def test_file_roundtrip(tmp_path):
    from repro.trace import dump_csv, load_csv
    t = sample_tracer()
    path = str(tmp_path / "trace.csv")
    n = dump_csv(t, path)
    assert n == 3
    t2 = load_csv(path)
    assert len(t2) == 3


def test_load_rejects_garbage():
    with pytest.raises(ValueError, match="not a trace CSV"):
        load_csv(io.StringIO("a,b\n1,2\n"))
    with pytest.raises(ValueError, match="malformed"):
        load_csv(io.StringIO("thread,state,t0,t1\n1,compute,0\n"))


@settings(max_examples=25, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 64),
              st.sampled_from(["compute", "get:am", "get:rdma",
                               "barrier"]),
              st.floats(0, 1e6, allow_nan=False),
              st.floats(0, 1e6, allow_nan=False)),
    max_size=40))
def test_property_roundtrip_exact(records):
    t = Tracer()
    for thread, state, a, b in records:
        t0, t1 = min(a, b), max(a, b)
        t.record(thread, state, t0, t1)
    t2 = loads(dumps(t))
    assert len(t2) == len(t)
    for a, b in zip(t, t2):
        # repr() round-trips floats exactly.
        assert (a.thread, a.state, a.t0, a.t1) == \
            (b.thread, b.state, b.t0, b.t1)
