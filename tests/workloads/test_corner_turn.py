"""Tests for the Corner Turn stressmark (extension)."""

import pytest

from repro.network import GM_MARENOSTRUM, LAPI_POWER5
from repro.workloads import CornerTurnParams, run_corner_turn

GM = dict(machine=GM_MARENOSTRUM, nthreads=8, threads_per_node=4)


def test_transpose_is_correct():
    r = run_corner_turn(CornerTurnParams(**GM, dim=32, tile=8, seed=2))
    ok, checksum = r.check
    assert ok, "distributed transpose must equal numpy A.T"
    assert checksum != 0.0


def test_functional_equivalence_and_speedup():
    on = run_corner_turn(CornerTurnParams(**GM, cache_enabled=True,
                                          dim=32, tile=4, seed=1))
    off = run_corner_turn(CornerTurnParams(**GM, cache_enabled=False,
                                           dim=32, tile=4, seed=1))
    assert on.check == off.check
    assert on.check[0]
    assert on.elapsed_us < off.elapsed_us


def test_all_to_all_cache_working_set():
    # Every node talks to every other: working set = nodes - 1,
    # regular schedule → high hit rate once warm.
    r = run_corner_turn(CornerTurnParams(
        machine=GM_MARENOSTRUM, nthreads=16, threads_per_node=4,
        dim=64, tile=4, seed=1))
    assert r.check[0]
    assert r.hit_rate > 0.6
    stats = r.run.cache_stats
    assert stats.insertions >= 3  # at least the other nodes, node 0 view


def test_param_validation():
    with pytest.raises(ValueError):
        CornerTurnParams(**GM, dim=30, tile=8)      # not divisible
    with pytest.raises(ValueError):
        CornerTurnParams(**GM, dim=8, tile=8)       # 1 tile < 8 threads


def test_runs_on_lapi():
    r = run_corner_turn(CornerTurnParams(
        machine=LAPI_POWER5, nthreads=8, threads_per_node=4,
        dim=32, tile=8, seed=3))
    assert r.check[0]
