"""Tests for the GET/PUT microbenchmarks."""

import pytest

from repro.network import GM_MARENOSTRUM, LAPI_POWER5
from repro.util.stats import improvement_pct
from repro.workloads.micro import (
    FIG6_SIZES,
    FIG7_SIZES,
    MicroParams,
    get_roundtrip_us,
    put_overhead_us,
)


def test_size_lists_match_paper_axes():
    assert FIG6_SIZES[0] == 1
    assert FIG6_SIZES[-1] == 4_194_304
    assert FIG7_SIZES[-1] == 8192


def test_params_validation():
    with pytest.raises(ValueError):
        MicroParams(machine=GM_MARENOSTRUM, msg_bytes=0, cache_enabled=True)
    with pytest.raises(ValueError):
        MicroParams(machine=GM_MARENOSTRUM, msg_bytes=8,
                    cache_enabled=True, reps=0)


def test_get_latency_deterministic():
    p = MicroParams(machine=GM_MARENOSTRUM, msg_bytes=64,
                    cache_enabled=True, reps=5)
    assert get_roundtrip_us(p) == get_roundtrip_us(p)


def test_get_latency_monotone_in_size():
    def lat(n):
        return get_roundtrip_us(MicroParams(
            machine=GM_MARENOSTRUM, msg_bytes=n, cache_enabled=False,
            reps=5))

    assert lat(16) <= lat(1024) <= lat(65536)


def test_cached_get_faster_both_platforms():
    for machine in (GM_MARENOSTRUM, LAPI_POWER5):
        z = get_roundtrip_us(MicroParams(machine=machine, msg_bytes=8,
                                         cache_enabled=False, reps=5))
        w = get_roundtrip_us(MicroParams(machine=machine, msg_bytes=8,
                                         cache_enabled=True, reps=5))
        assert w < z


def test_put_regression_on_lapi_small():
    # The Figure 6 right-panel effect.
    z = put_overhead_us(MicroParams(machine=LAPI_POWER5, msg_bytes=16,
                                    cache_enabled=False, reps=5))
    w = put_overhead_us(MicroParams(machine=LAPI_POWER5, msg_bytes=16,
                                    cache_enabled=True, reps=5))
    assert improvement_pct(z, w) < -100.0


def test_put_neutral_on_gm_small():
    z = put_overhead_us(MicroParams(machine=GM_MARENOSTRUM, msg_bytes=16,
                                    cache_enabled=False, reps=5))
    w = put_overhead_us(MicroParams(machine=GM_MARENOSTRUM, msg_bytes=16,
                                    cache_enabled=True, reps=5))
    assert abs(improvement_pct(z, w)) < 12.0


def test_roundtrip_in_paper_latency_range():
    # Figure 7: small-message GETs are tens of microseconds, with the
    # network round trip itself 4-8us.
    z = get_roundtrip_us(MicroParams(machine=GM_MARENOSTRUM, msg_bytes=1,
                                     cache_enabled=False, reps=5))
    assert 10.0 < z < 30.0
    z = get_roundtrip_us(MicroParams(machine=LAPI_POWER5, msg_bytes=1,
                                     cache_enabled=False, reps=5))
    assert 8.0 < z < 20.0
