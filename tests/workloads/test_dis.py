"""Tests for the DIS stressmark implementations."""

import pytest

from repro.network import GM_MARENOSTRUM, LAPI_POWER5
from repro.workloads import (
    FieldParams,
    NeighborhoodParams,
    PointerParams,
    UpdateParams,
    run_field,
    run_neighborhood,
    run_pointer,
    run_update,
)

GM = dict(machine=GM_MARENOSTRUM, nthreads=8, threads_per_node=4)


# ----------------------------------------------------------------- pointer

def test_pointer_functional_equivalence():
    a = run_pointer(PointerParams(**GM, cache_enabled=True, seed=7,
                                  nelems=2048, hops=16))
    b = run_pointer(PointerParams(**GM, cache_enabled=False, seed=7,
                                  nelems=2048, hops=16))
    assert a.check == b.check
    assert a.elapsed_us < b.elapsed_us


def test_pointer_chain_is_a_permutation_cycle():
    from repro.workloads.dis.pointer import _build_chain
    import numpy as np
    chain = _build_chain(64, seed=3)
    seen = set()
    idx = 0
    for _ in range(64):
        assert idx not in seen
        seen.add(idx)
        idx = int(chain[idx])
    assert idx == 0 and len(seen) == 64


def test_pointer_cache_grows_with_node_count():
    # Figure 8a's driver: random access over the whole space touches
    # one cache entry per remote node.
    r = run_pointer(PointerParams(machine=GM_MARENOSTRUM, nthreads=16,
                                  threads_per_node=2, cache_enabled=True,
                                  nelems=4096, hops=32, seed=1))
    assert r.run.cache_stats.insertions >= 5


def test_pointer_params_validation():
    with pytest.raises(ValueError):
        PointerParams(**GM, nelems=4, hops=0)
    with pytest.raises(ValueError):
        PointerParams(machine=GM_MARENOSTRUM, nthreads=8, nelems=4)


# ----------------------------------------------------------------- update

def test_update_only_thread0_communicates():
    r = run_update(UpdateParams(**GM, cache_enabled=True, seed=2,
                                nelems=2048, hops=12))
    m = r.run.metrics
    # All remote traffic originates from thread 0.
    assert m.get_remote.n + m.get_shm.n + m.get_local.n \
        == 12 * 3  # reads_per_hop
    assert r.check[0] is not None


def test_update_functional_equivalence():
    a = run_update(UpdateParams(**GM, cache_enabled=True, seed=5,
                                nelems=1024, hops=10))
    b = run_update(UpdateParams(**GM, cache_enabled=False, seed=5,
                                nelems=1024, hops=10))
    assert a.check == b.check


def test_update_improvement_more_modest_than_pointer():
    # Figure 9: Update (11-22%) sits well below Pointer (30-60%).
    kw = dict(machine=GM_MARENOSTRUM, nthreads=16, threads_per_node=4,
              seed=1)
    pt_on = run_pointer(PointerParams(cache_enabled=True, **kw))
    pt_off = run_pointer(PointerParams(cache_enabled=False, **kw))
    up_on = run_update(UpdateParams(cache_enabled=True, **kw))
    up_off = run_update(UpdateParams(cache_enabled=False, **kw))
    imp_pt = 1 - pt_on.elapsed_us / pt_off.elapsed_us
    imp_up = 1 - up_on.elapsed_us / up_off.elapsed_us
    assert imp_up < imp_pt


# ------------------------------------------------------------ neighborhood

def test_neighborhood_functional_equivalence():
    a = run_neighborhood(NeighborhoodParams(**GM, cache_enabled=True,
                                            seed=4, dim=64, samples=8,
                                            distance=5))
    b = run_neighborhood(NeighborhoodParams(**GM, cache_enabled=False,
                                            seed=4, dim=64, samples=8,
                                            distance=5))
    assert a.check == b.check


def test_neighborhood_tiny_cache_working_set():
    # Figure 8b: neighbours only — "only a few cache entries are used".
    r = run_neighborhood(NeighborhoodParams(
        machine=GM_MARENOSTRUM, nthreads=16, threads_per_node=2,
        cache_enabled=True, seed=1, dim=128, samples=16))
    # Each node's cache holds at most its two neighbour nodes.
    stats = r.run.cache_stats
    assert stats.insertions <= 2 * 8  # 2 entries x 8 nodes
    assert stats.hit_rate > 0.8


def test_neighborhood_param_validation():
    with pytest.raises(ValueError):
        NeighborhoodParams(**GM, dim=8)          # too few rows
    with pytest.raises(ValueError):
        NeighborhoodParams(**GM, dim=64, distance=0)
    with pytest.raises(ValueError):
        NeighborhoodParams(**GM, dim=64, distance=5,
                           boundary_fraction=1.5)


# ----------------------------------------------------------------- field

def test_field_counts_all_matches_exactly():
    """The UPC search must find exactly what a serial numpy scan finds."""
    import numpy as np
    from repro.util.rng import seeded_rng
    from repro.workloads.dis.field import _count_matches

    p = FieldParams(**GM, cache_enabled=True, seed=11, nelems=4096,
                    token_len=3, ntokens=2, alphabet=4)
    r = run_field(p)
    # Serial reference on the same generated input.
    rng = seeded_rng(p.seed, 0xF1E1D)
    words = rng.integers(0, p.alphabet, size=p.nelems, dtype=np.uint64)
    tokens = [rng.integers(0, p.alphabet, size=p.token_len,
                           dtype=np.uint64) for _ in range(p.ntokens)]
    expect = sum(_count_matches(words, tok) for tok in tokens)
    assert sum(r.check) == expect


def test_field_functional_equivalence():
    a = run_field(FieldParams(**GM, cache_enabled=True, seed=9,
                              nelems=4096, ntokens=2))
    b = run_field(FieldParams(**GM, cache_enabled=False, seed=9,
                              nelems=4096, ntokens=2))
    assert a.check == b.check


def test_field_gm_gains_lapi_flat():
    # Sections 4.6 vs 4.7: the progress asymmetry.
    def imp(machine, tpn):
        on = run_field(FieldParams(machine=machine, nthreads=16,
                                   threads_per_node=tpn,
                                   cache_enabled=True, seed=1))
        off = run_field(FieldParams(machine=machine, nthreads=16,
                                    threads_per_node=tpn,
                                    cache_enabled=False, seed=1))
        assert on.check == off.check
        return 1 - on.elapsed_us / off.elapsed_us

    gm = imp(GM_MARENOSTRUM, 4)
    lapi = imp(LAPI_POWER5, 8)
    assert gm > 0.08
    assert abs(lapi) < 0.08
    assert gm > 2 * abs(lapi)


def test_field_param_validation():
    with pytest.raises(ValueError):
        FieldParams(**GM, token_len=1)
    with pytest.raises(ValueError):
        FieldParams(**GM, nelems=16)
