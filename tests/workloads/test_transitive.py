"""Tests for the Transitive Closure stressmark (extension)."""

import numpy as np
import pytest

from repro.network import GM_MARENOSTRUM, LAPI_POWER5
from repro.workloads import TransitiveParams, run_transitive

GM = dict(machine=GM_MARENOSTRUM, nthreads=8, threads_per_node=4)


def test_closure_matches_numpy_reference():
    r = run_transitive(TransitiveParams(**GM, nverts=32, density=0.05,
                                        seed=4))
    ok, reachable = r.check
    assert ok
    # Sparse graph: the closure must be non-trivial (not empty, not
    # complete).
    assert 32 < reachable < 32 * 32


def test_functional_equivalence_and_speedup():
    from dataclasses import replace
    p = TransitiveParams(**GM, nverts=32, density=0.06, seed=2)
    on = run_transitive(p)
    off = run_transitive(replace(p, cache_enabled=False))
    assert on.check == off.check and on.check[0]
    assert on.elapsed_us < off.elapsed_us


def test_rotating_source_keeps_cache_hot():
    r = run_transitive(TransitiveParams(
        machine=GM_MARENOSTRUM, nthreads=16, threads_per_node=4,
        nverts=64, density=0.05, seed=1))
    assert r.check[0]
    assert r.hit_rate > 0.8


def test_runs_on_lapi():
    r = run_transitive(TransitiveParams(
        machine=LAPI_POWER5, nthreads=8, threads_per_node=4,
        nverts=24, density=0.1, seed=7))
    assert r.check[0]


def test_param_validation():
    with pytest.raises(ValueError):
        TransitiveParams(**GM, nverts=4)          # fewer rows than threads
    with pytest.raises(ValueError):
        TransitiveParams(**GM, nverts=32, density=1.5)
