"""Lossy-fabric traffic: layout invariance, policy effects, plumbing.

The traced issue path precomputes every request's whole retry chain
from pure fate hashes at issue time, so the same trace + seed must
produce bit-identical histograms, per-client digests, per-link health
totals and policy decisions whatever shard layout or backend executes
the run.
"""

import numpy as np
import pytest

from repro.faults import LinkRule, LinkTrace, TraceSegment, make_trace
from repro.workloads.kv_traffic import (TrafficParams, run_kv_traffic)

pytestmark = pytest.mark.shard

#: A fabric that is definitely sick from t=0 on two specific links —
#: no dependence on generator phase, so even short runs see drops.
SICK = LinkTrace(seed=5, name="sick", links=(
    LinkRule(src=0, dst=1, segments=(
        TraceSegment(t_start=0.0, t_end=1e9, loss=0.35),)),
    LinkRule(src=1, dst=0, segments=(
        TraceSegment(t_start=0.0, t_end=1e9, loss=0.35),)),
))


def _params(**kw):
    kw.setdefault("nnodes", 4)
    kw.setdefault("nclients", 16)
    kw.setdefault("requests", 12_000)
    kw.setdefault("seed", 11)
    return TrafficParams(**kw)


def _fingerprint(res):
    fp = {
        "hist": res.hist.tobytes(),
        "hit": res.hist_hit.tobytes(),
        "miss": res.hist_miss.tobytes(),
        "digests": res.digests,
        "counts": (res.requests, res.hits, res.misses, res.conns),
    }
    if "links" in res.extra:
        fp["links"] = res.extra["links"]
    if "policy" in res.extra:
        fp["policy_digest"] = res.extra["policy"]["digest"]
        fp["decisions"] = res.extra["policy"]["decisions"]
    return fp


# ---------------------------------------------------------------------------
# Layout invariance
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("policy", ["", "do_nothing",
                                    "disable_and_repair"])
def test_traced_run_is_shard_invariant(policy):
    p = _params(link_trace=SICK.to_json(), repair_policy=policy)
    ref = _fingerprint(run_kv_traffic(p, 1))
    for nshards in (2, 4):
        assert _fingerprint(run_kv_traffic(p, nshards)) == ref
    # sickness actually bit: the sick links saw timeouts
    links = ref["links"]
    assert links[(0, 1)]["timeouts"] > 0


def test_traced_run_is_backend_invariant():
    p = _params(link_trace=SICK.to_json(),
                repair_policy="retransmit_tuning")
    a = _fingerprint(run_kv_traffic(p, 2, mode="inproc"))
    b = _fingerprint(run_kv_traffic(p, 2, mode="mp"))
    assert a == b


def test_zero_trace_is_bit_identical_to_no_trace():
    # "" and an empty LinkTrace take the exact pre-trace code path
    base = run_kv_traffic(_params(), 2)
    empty = run_kv_traffic(_params(link_trace=LinkTrace().to_json()), 2)
    assert np.array_equal(base.hist, empty.hist)
    assert base.digests == empty.digests
    assert "links" not in base.extra and "links" not in empty.extra
    assert "policy" not in empty.extra


# ---------------------------------------------------------------------------
# Policy effects
# ---------------------------------------------------------------------------

def test_disable_and_repair_beats_do_nothing_under_flap():
    # the acceptance-gate comparison at test scale: the flapping link's
    # down phases dominate the do_nothing tail; detouring around them
    # must win at p99
    tr = make_trace("flap", 4, seed=7, horizon_us=4000.0,
                    period_us=1500.0, down_us=600.0)
    runs = {}
    for policy in ("do_nothing", "disable_and_repair"):
        p = _params(requests=64_000, link_trace=tr.to_json(),
                    repair_policy=policy)
        runs[policy] = run_kv_traffic(p, 2)
    dn = runs["do_nothing"].quantiles()["p99_us"]
    dr = runs["disable_and_repair"].quantiles()["p99_us"]
    assert dr < dn
    assert runs["disable_and_repair"].extra["policy"]["decisions"]
    # the control arm never acts
    assert runs["do_nothing"].extra["policy"]["decisions"] == []


def test_exhausted_requests_are_counted_not_hung():
    # a link that never delivers: every request crossing it exhausts
    # its retry budget and lands in the failure count, and the run
    # still terminates with every op accounted for
    dead = LinkTrace(seed=1, name="dead", links=(
        LinkRule(src=0, dst=1, segments=(
            TraceSegment(t_start=0.0, t_end=1e9, loss=1.0),)),))
    p = _params(requests=2_000, link_trace=dead.to_json())
    res = run_kv_traffic(p, 2)
    failures = sum(o["counts"]["failures"]
                   for o in res.extra["run"].outputs)
    assert failures > 0
    # completions + exhaustions account for every issued request
    assert res.requests + failures == 2_000


def test_policy_without_trace_is_rejected():
    with pytest.raises(ValueError, match="needs a link trace"):
        run_kv_traffic(_params(repair_policy="do_nothing"), 2)


def test_unknown_policy_is_rejected():
    p = _params(link_trace=SICK.to_json(), repair_policy="percussive")
    with pytest.raises(ValueError, match="unknown repair policy"):
        run_kv_traffic(p, 2)


# ---------------------------------------------------------------------------
# Health + decision plumbing
# ---------------------------------------------------------------------------

def test_link_totals_and_decisions_ride_the_merge():
    p = _params(link_trace=SICK.to_json(),
                repair_policy="retransmit_tuning",
                slo_target_us=30.0)
    res = run_kv_traffic(p, 4)
    links = res.extra["links"]
    # health observed on the sick request link, attributed src->dst
    assert links[(0, 1)]["attempts"] >= links[(0, 1)]["deliveries"]
    assert links[(0, 1)]["retries"] > 0
    pol = res.extra["policy"]
    assert pol["name"] == "retransmit_tuning"
    assert pol["decisions"], "sick links never tripped the policy"
    ts = [d["t_us"] for d in pol["decisions"]]
    assert ts == sorted(ts)
    # policy actions surface in the merged SLO windows
    assert res.extra["slo"]["summary"]["policy_actions"] \
        == len(pol["decisions"])
