"""Smoke tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main


def test_cli_runs_one_quick_figure(capsys):
    assert main(["fig6_get", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6 (left)" in out
    assert "gm_pct" in out


def test_cli_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        main(["fig42"])


def test_cli_miss_overhead(capsys):
    assert main(["miss_overhead", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "overhead_pct" in out
