"""Smoke tests for the ``python -m repro`` CLI."""

import json

import pytest

from repro.__main__ import main


def test_cli_runs_one_quick_figure(capsys):
    assert main(["fig6_get", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6 (left)" in out
    assert "gm_pct" in out


def test_cli_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        main(["fig42"])


def test_cli_miss_overhead(capsys):
    assert main(["miss_overhead", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "overhead_pct" in out


def test_cli_trace_chrome_smoke(tmp_path, capsys):
    from repro.obs import validate_chrome

    out_dir = tmp_path / "trace-out"
    assert main(["trace", "pointer", "--quick", "--format", "chrome",
                 "--out", str(out_dir)]) == 0
    artifact = out_dir / "pointer.trace.json"
    assert artifact.exists()
    doc = json.loads(artifact.read_text())
    assert validate_chrome(doc) == []
    out = capsys.readouterr().out
    assert "recorded events" in out


def test_cli_trace_breakdown_and_jsonl(tmp_path, capsys):
    from repro.obs import collect_breakdowns, load_jsonl, summarize

    out_dir = tmp_path / "trace-out"
    assert main(["trace", "field", "--quick", "--format", "jsonl",
                 "--breakdown", "--out", str(out_dir)]) == 0
    out = capsys.readouterr().out
    assert "latency breakdown" in out
    assert (out_dir / "field.breakdown.txt").exists()
    log = load_jsonl(str(out_dir / "field.events.jsonl"))
    s = summarize(collect_breakdowns(log))
    assert s.n_ops > 0
    # The acceptance criterion: components sum to the end-to-end mean
    # within 1%.
    assert s.component_mean_sum == pytest.approx(s.e2e_mean, rel=0.01)


def test_cli_trace_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        main(["trace", "nonesuch"])
