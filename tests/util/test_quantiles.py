"""Property and unit tests for the P² streaming quantile estimator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util.quantiles import LatencyDigest, P2Quantile


def test_quantile_validation():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)


def test_exact_for_few_samples():
    q = P2Quantile(0.5)
    assert q.value == 0.0
    for x in (5.0, 1.0, 3.0):
        q.add(x)
    assert q.value == 3.0   # exact median of 3 samples


def test_median_of_uniform_stream():
    rng = np.random.default_rng(1)
    data = rng.random(20_000)
    q = P2Quantile(0.5)
    for x in data:
        q.add(float(x))
    assert q.value == pytest.approx(0.5, abs=0.03)


def test_p99_of_exponential_stream():
    rng = np.random.default_rng(2)
    data = rng.exponential(1.0, 50_000)
    q = P2Quantile(0.99)
    for x in data:
        q.add(float(x))
    true = float(np.quantile(data, 0.99))
    assert q.value == pytest.approx(true, rel=0.15)


def test_monotone_stream_exact():
    q = P2Quantile(0.5)
    for x in range(1, 1002):
        q.add(float(x))
    assert q.value == pytest.approx(501.0, rel=0.02)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=5, max_size=400),
       st.sampled_from([0.25, 0.5, 0.9]))
def test_property_estimate_within_observed_range(data, qq):
    q = P2Quantile(qq)
    for x in data:
        q.add(x)
    assert min(data) <= q.value <= max(data)
    assert q.count == len(data)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_property_reasonable_accuracy_on_normal(seed):
    rng = np.random.default_rng(seed)
    data = rng.normal(100.0, 15.0, 5_000)
    q = P2Quantile(0.95)
    for x in data:
        q.add(float(x))
    true = float(np.quantile(data, 0.95))
    assert abs(q.value - true) < 5.0  # ~0.3 sigma tolerance


def test_latency_digest_bundle():
    d = LatencyDigest()
    for x in range(1, 1001):
        d.add(float(x))
    assert d.count == 1000
    assert d.p50.value == pytest.approx(500, rel=0.05)
    assert d.p95.value == pytest.approx(950, rel=0.05)
    assert d.p99.value == pytest.approx(990, rel=0.05)
    assert "p99" in d.summary()
