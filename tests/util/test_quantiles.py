"""Property and unit tests for the P² streaming quantile estimator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util.quantiles import LatencyDigest, P2Quantile


def exact_small_sample(data, q):
    """The ceil-rank rule the small-sample path must implement."""
    data = sorted(data)
    idx = min(len(data) - 1, max(0, math.ceil(q * (len(data) - 1))))
    return data[idx]


def test_quantile_validation():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)


def test_exact_for_few_samples():
    q = P2Quantile(0.5)
    assert q.value == 0.0
    for x in (5.0, 1.0, 3.0):
        q.add(x)
    assert q.value == 3.0   # exact median of 3 samples


def test_small_sample_uses_ceil_rank():
    # p50 of two samples is the *upper* one: round-half-even would
    # pick index round(0.5) == 0 (the regression this pins down).
    q = P2Quantile(0.5)
    q.add(1.0)
    q.add(9.0)
    assert q.value == 9.0
    # p95 of four samples is the maximum (ceil(0.95 * 3) == 3);
    # round-half-even sent it to the 3rd sample.
    q = P2Quantile(0.95)
    for x in (4.0, 1.0, 3.0, 2.0):
        q.add(x)
    assert q.value == 4.0


def test_small_sample_matches_ceil_rank_rule_everywhere():
    for n in (1, 2, 3, 4):
        for qq in (0.25, 0.5, 0.75, 0.9, 0.95, 0.99):
            data = [float(7 * i % 5) for i in range(n)]
            tracker = P2Quantile(qq)
            for x in data:
                tracker.add(x)
            assert tracker.value == exact_small_sample(data, qq), (
                f"n={n} q={qq}")


def test_seed_buffer_released_after_marker_init():
    q = P2Quantile(0.5)
    for x in range(5):
        q.add(float(x))
    # Markers are live; the seed buffer must be dropped, not kept as a
    # second five-element list per tracker.
    assert len(q._heights) == 5
    assert q._n == []


def test_median_of_uniform_stream():
    rng = np.random.default_rng(1)
    data = rng.random(20_000)
    q = P2Quantile(0.5)
    for x in data:
        q.add(float(x))
    assert q.value == pytest.approx(0.5, abs=0.03)


def test_p99_of_exponential_stream():
    rng = np.random.default_rng(2)
    data = rng.exponential(1.0, 50_000)
    q = P2Quantile(0.99)
    for x in data:
        q.add(float(x))
    true = float(np.quantile(data, 0.99))
    assert q.value == pytest.approx(true, rel=0.15)


def test_monotone_stream_exact():
    q = P2Quantile(0.5)
    for x in range(1, 1002):
        q.add(float(x))
    assert q.value == pytest.approx(501.0, rel=0.02)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=5, max_size=400),
       st.sampled_from([0.25, 0.5, 0.9]))
def test_property_estimate_within_observed_range(data, qq):
    q = P2Quantile(qq)
    for x in data:
        q.add(x)
    assert min(data) <= q.value <= max(data)
    assert q.count == len(data)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_property_reasonable_accuracy_on_normal(seed):
    rng = np.random.default_rng(seed)
    data = rng.normal(100.0, 15.0, 5_000)
    q = P2Quantile(0.95)
    for x in data:
        q.add(float(x))
    true = float(np.quantile(data, 0.95))
    assert abs(q.value - true) < 5.0  # ~0.3 sigma tolerance


@settings(max_examples=60, deadline=None, derandomize=True)
@given(st.sampled_from([1, 2, 3, 4, 5, 7, 12, 33, 100, 470, 1000,
                        4000, 10000]),
       st.integers(0, 2**31 - 1))
def test_property_digest_tracks_exact_quantiles(n, seed):
    """LatencyDigest p50/p95/p99 vs exact sorted-array quantiles
    across stream sizes 1..10_000.

    Bands: exact ceil-rank below five samples (the pre-marker path);
    within the observed range once markers are live; and within a
    ±0.12-quantile bracket of the exact answer once the stream is
    large enough for P² to have converged (n >= 33; measured worst
    case across distributions is well inside that bracket)."""
    rng = np.random.default_rng(seed)
    if seed % 2:
        data = rng.exponential(50.0, n)
    else:
        data = np.clip(rng.normal(100.0, 15.0, n), 0.0, None)
    digest = LatencyDigest()
    for x in data:
        digest.add(float(x))
    assert digest.count == n
    for q, tracker in ((0.50, digest.p50), (0.95, digest.p95),
                       (0.99, digest.p99)):
        v = tracker.value
        if n < 5:
            assert v == exact_small_sample(data.tolist(), q)
            continue
        assert data.min() - 1e-9 <= v <= data.max() + 1e-9
        if n >= 33:
            lo = float(np.quantile(data, max(0.0, q - 0.12)))
            hi = float(np.quantile(data, min(1.0, q + 0.12)))
            assert lo - 1e-9 <= v <= hi + 1e-9, (
                f"n={n} q={q}: {v} outside [{lo}, {hi}]")


def test_latency_digest_bundle():
    d = LatencyDigest()
    for x in range(1, 1001):
        d.add(float(x))
    assert d.count == 1000
    assert d.p50.value == pytest.approx(500, rel=0.05)
    assert d.p95.value == pytest.approx(950, rel=0.05)
    assert d.p99.value == pytest.approx(990, rel=0.05)
    assert "p99" in d.summary()
