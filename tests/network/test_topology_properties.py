"""Property tests for the interconnect topologies."""

from hypothesis import given, settings, strategies as st

from repro.network.topology import (
    FlatEthernet,
    HPSSwitch,
    MyrinetClos,
    Torus3D,
)


@settings(max_examples=50, deadline=None)
@given(nnodes=st.integers(2, 600), data=st.data())
def test_property_clos_hops_symmetric_and_bounded(nnodes, data):
    topo = MyrinetClos(nnodes, base_us=1.0, per_hop_us=0.4)
    a = data.draw(st.integers(0, nnodes - 1))
    b = data.draw(st.integers(0, nnodes - 1))
    h = topo.hops(a, b)
    assert h == topo.hops(b, a)
    assert h in ((0,) if a == b else (1, 3, 5))
    # Same linecard iff 1 hop.
    if a != b:
        assert (topo.linecard(a) == topo.linecard(b)) == (h == 1)


@settings(max_examples=50, deadline=None)
@given(nnodes=st.integers(2, 512), data=st.data())
def test_property_torus_hops_metric(nnodes, data):
    topo = Torus3D(nnodes, base_us=0.5, per_hop_us=0.1)
    a = data.draw(st.integers(0, nnodes - 1))
    b = data.draw(st.integers(0, nnodes - 1))
    c = data.draw(st.integers(0, nnodes - 1))
    # Symmetry and identity.
    assert topo.hops(a, b) == topo.hops(b, a)
    assert topo.hops(a, a) == 0
    # Bounded by half the folded box perimeter.
    bound = sum(d // 2 for d in topo.dims)
    if a != b:
        assert 1 <= topo.hops(a, b) <= max(1, bound)
    # Triangle inequality (with the min-1 clamp, allow equality slack).
    assert topo.hops(a, c) <= topo.hops(a, b) + topo.hops(b, c) + 1


@settings(max_examples=30, deadline=None)
@given(nnodes=st.integers(1, 600))
def test_property_torus_folding_covers_all_nodes(nnodes):
    topo = Torus3D(nnodes, base_us=0.5, per_hop_us=0.1)
    x, y, z = topo.dims
    assert x * y * z >= nnodes
    coords = {topo.coords(n) for n in range(nnodes)}
    assert len(coords) == nnodes  # injective


@settings(max_examples=30, deadline=None)
@given(nnodes=st.integers(2, 100), data=st.data())
def test_property_flat_fabrics_uniform(nnodes, data):
    for cls in (HPSSwitch, FlatEthernet):
        topo = cls(nnodes, base_us=2.0, per_hop_us=0.5)
        a = data.draw(st.integers(0, nnodes - 1))
        b = data.draw(st.integers(0, nnodes - 1))
        if a != b:
            assert topo.latency(a, b) == topo.latency(0, nnodes - 1)
