"""Unit tests for the interconnect topologies."""

import pytest

from repro.network import GM_MARENOSTRUM, LAPI_POWER5, make_topology
from repro.network.topology import HPSSwitch, MyrinetClos, Topology


def test_myrinet_hop_counts_match_paper():
    # Section 4.1: 1 hop same linecard, 3 same group, 5 across groups.
    topo = MyrinetClos(512, base_us=1.0, per_hop_us=0.5,
                       nodes_per_linecard=16, linecards_per_group=8)
    assert topo.hops(0, 0) == 0
    assert topo.hops(0, 15) == 1     # same linecard
    assert topo.hops(0, 16) == 3     # same group, different linecard
    assert topo.hops(0, 127) == 3    # last node of group 0
    assert topo.hops(0, 128) == 5    # different group
    assert topo.hops(200, 500) == 5


def test_myrinet_latency_scales_with_hops():
    topo = MyrinetClos(512, base_us=1.0, per_hop_us=0.5)
    assert topo.latency(0, 1) == pytest.approx(1.5)
    assert topo.latency(0, 16) == pytest.approx(2.5)
    assert topo.latency(0, 128) == pytest.approx(3.5)
    assert topo.latency(7, 7) == 0.0


def test_hops_symmetric():
    topo = MyrinetClos(256, base_us=1.0, per_hop_us=0.5)
    for a, b in [(0, 3), (0, 20), (5, 200), (130, 131)]:
        assert topo.hops(a, b) == topo.hops(b, a)


def test_hps_uniform():
    topo = HPSSwitch(28, base_us=1.5, per_hop_us=0.1)
    lats = {topo.latency(0, d) for d in range(1, 28)}
    assert len(lats) == 1  # flat fabric
    assert topo.latency(3, 3) == 0.0


def test_out_of_range_rejected():
    topo = Topology(4, 1.0, 0.1)
    with pytest.raises(ValueError):
        topo.latency(0, 4)
    with pytest.raises(ValueError):
        topo.hops(-1, 0)


def test_make_topology_dispatches_on_machine():
    t1 = make_topology(GM_MARENOSTRUM, 64)
    t2 = make_topology(LAPI_POWER5, 28)
    assert isinstance(t1, MyrinetClos)
    assert isinstance(t2, HPSSwitch)


def test_topology_needs_a_node():
    with pytest.raises(ValueError):
        Topology(0, 1.0, 0.1)
