"""Wire-message log and credit-based eager flow control."""

import pytest

from repro.network import Cluster, GM_MARENOSTRUM
from repro.network import message as wire
from repro.network.message import MessageLog, WireMessage
from repro.sim import Simulator
from repro.util import KB, MB


def make(machine=GM_MARENOSTRUM, nnodes=2, **overrides):
    from dataclasses import replace
    sim = Simulator()
    if overrides:
        machine = replace(
            machine,
            transport=machine.transport.with_overrides(**overrides))
    cluster = Cluster(sim, machine, nnodes)
    for node in cluster.nodes:
        node.progress.enter_runtime()
    return sim, cluster


# --------------------------------------------------------------- log

def test_wire_message_validation():
    with pytest.raises(ValueError):
        WireMessage(kind="smoke-signal", src=0, dst=1, nbytes=8,
                    t_inject=0.0)
    with pytest.raises(ValueError):
        WireMessage(kind=wire.AM_REQUEST, src=0, dst=1, nbytes=-1,
                    t_inject=0.0)


def test_log_bounded():
    log = MessageLog(max_records=2)
    for i in range(5):
        log.add(WireMessage(kind=wire.ONEWAY, src=0, dst=1, nbytes=8,
                            t_inject=float(i)))
    assert len(log) == 2 and log.dropped == 3


def test_eager_get_produces_request_and_reply():
    sim, cluster = make()
    log = cluster.transport.enable_log()

    def run():
        yield from cluster.transport.default_get(
            cluster.node(0), cluster.node(1), 256)

    sim.run_process(run())
    assert len(log.by_kind(wire.AM_REQUEST)) == 1
    assert len(log.by_kind(wire.AM_REPLY)) == 1
    reply = log.by_kind(wire.AM_REPLY)[0]
    assert reply.src == 1 and reply.dst == 0
    assert reply.nbytes >= 256


def test_rendezvous_put_protocol_shape():
    sim, cluster = make()
    log = cluster.transport.enable_log()

    def run():
        yield from cluster.transport.default_put(
            cluster.node(0), cluster.node(1), 1 * MB)

    sim.run_process(run())
    sim.run()
    assert len(log.by_kind(wire.RTS)) == 1
    assert len(log.by_kind(wire.CTS)) == 1
    assert len(log.by_kind(wire.RDV_DATA)) == 1
    assert log.by_kind(wire.RDV_DATA)[0].nbytes == 1 * MB


def test_rdma_messages_logged():
    sim, cluster = make()
    log = cluster.transport.enable_log()

    def run():
        yield from cluster.transport.rdma_get(
            cluster.node(0), cluster.node(1), 512)
        yield from cluster.transport.rdma_put(
            cluster.node(0), cluster.node(1), 512)

    sim.run_process(run())
    sim.run()
    assert len(log.by_kind(wire.RDMA_READ)) == 1
    assert len(log.by_kind(wire.RDMA_READ_RESP)) == 1
    assert len(log.by_kind(wire.RDMA_WRITE)) == 1
    assert "rdma-read" in log.summary()


def test_log_summary_and_totals():
    sim, cluster = make()
    log = cluster.transport.enable_log()

    def run():
        yield from cluster.transport.default_get(
            cluster.node(0), cluster.node(1), 64)

    sim.run_process(run())
    assert log.total_bytes() > 64
    assert log.between(0, 1)


# ----------------------------------------------------------- credits

def test_credits_limit_outstanding_eager_puts():
    # With one credit, a second eager PUT must wait for the first to
    # be consumed at the target.
    sim, cluster = make(eager_credits=1)
    src, dst = cluster.node(0), cluster.node(1)
    done = []

    def sender(tag):
        yield from cluster.transport.default_put(src, dst, 128)
        done.append((tag, sim.now))

    sim.process(sender("a"))
    sim.process(sender("b"))
    sim.run()
    # Compare against an uncontended run with ample credits.
    sim2, cluster2 = make(eager_credits=64)
    done2 = []

    def sender2(tag):
        yield from cluster2.transport.default_put(
            cluster2.node(0), cluster2.node(1), 128)
        done2.append((tag, sim2.now))

    sim2.process(sender2("a"))
    sim2.process(sender2("b"))
    sim2.run()
    assert done[1][1] > done2[1][1]  # credit stall visible


def test_rdma_ignores_credits():
    # RDMA bypasses receive buffers entirely: even with zero spare
    # credits the one-sided path proceeds.
    sim, cluster = make(eager_credits=1)
    src, dst = cluster.node(0), cluster.node(1)
    pool = cluster.transport._credit_pool(dst)
    assert pool.try_acquire()          # exhaust the single credit

    def run():
        yield from cluster.transport.rdma_get(src, dst, 4 * KB)
        return sim.now

    t = sim.run_process(run())
    assert t > 0


def test_credit_pool_returns_to_full():
    sim, cluster = make(eager_credits=4)
    src, dst = cluster.node(0), cluster.node(1)

    def run():
        for _ in range(6):
            yield from cluster.transport.default_put(src, dst, 64)

    sim.run_process(run())
    sim.run()
    pool = cluster.transport._credit_pool(dst)
    assert pool.in_use == 0            # all credits returned