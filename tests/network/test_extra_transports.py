"""Tests for the TCP/IP sockets and BlueGene/L transport models
(section 2 lists both among XLUPC's implemented messaging methods)."""

import pytest

from repro.network import BGL_TORUS, TCP_CLUSTER, make_topology
from repro.network.topology import FlatEthernet, Torus3D
from repro.runtime import Runtime, RuntimeConfig


# --------------------------------------------------------------- topology

def test_torus_folding_is_cubic():
    t = Torus3D(64, base_us=0.5, per_hop_us=0.1)
    assert sorted(t.dims, reverse=True) == [4, 4, 4]
    t = Torus3D(512, base_us=0.5, per_hop_us=0.1)
    assert t.dims == (8, 8, 8)


def test_torus_wraparound_shortens_routes():
    t = Torus3D(8, base_us=0.5, per_hop_us=0.1)   # 2x2x2
    # Any two distinct corners of a 2-cube are <= 3 hops apart.
    for a in range(8):
        for b in range(8):
            if a != b:
                assert 1 <= t.hops(a, b) <= 3
                assert t.hops(a, b) == t.hops(b, a)


def test_torus_coords_roundtrip():
    t = Torus3D(27, base_us=0.5, per_hop_us=0.1)
    seen = {t.coords(n) for n in range(27)}
    assert len(seen) == 27


def test_flat_ethernet_uniform():
    t = FlatEthernet(16, base_us=18.0, per_hop_us=2.0)
    lats = {t.latency(0, d) for d in range(1, 16)}
    assert lats == {20.0}


def test_make_topology_new_kinds():
    assert isinstance(make_topology(TCP_CLUSTER, 8), FlatEthernet)
    assert isinstance(make_topology(BGL_TORUS, 64), Torus3D)


# --------------------------------------------------------------- runtimes

def pointer_like(th):
    arr = yield from th.all_alloc(1024, blocksize=None, dtype="u8")
    if th.id == 0:
        arr.data[:] = range(1024)
    yield from th.barrier()
    acc = 0
    for k in range(16):
        v = yield from th.get(arr, (th.id * 131 + k * 67) % 1024)
        acc += int(v)
    yield from th.put(arr, th.id, acc % 1024)
    yield from th.barrier()
    return acc


def run_on(machine, cache_enabled, nthreads=8, tpn=2):
    cfg = RuntimeConfig(machine=machine, nthreads=nthreads,
                        threads_per_node=tpn,
                        cache_enabled=cache_enabled, seed=2)
    rt = Runtime(cfg)
    procs = rt.spawn(pointer_like)
    res = rt.run()
    return rt, res, [p.value for p in procs]


def test_tcp_cache_is_inert():
    """No RDMA on sockets → the cache must neither help nor be used."""
    rt_on, res_on, ans_on = run_on(TCP_CLUSTER, True)
    rt_off, res_off, ans_off = run_on(TCP_CLUSTER, False)
    assert ans_on == ans_off
    assert res_on.elapsed_us == pytest.approx(res_off.elapsed_us)
    assert rt_on.metrics.rdma_gets == 0
    assert rt_on.metrics.rdma_puts == 0
    assert res_on.cache_stats.accesses == 0


def test_tcp_latency_dominated_by_wire_and_syscalls():
    _, res, _ = run_on(TCP_CLUSTER, False)
    rt, _, _ = run_on(TCP_CLUSTER, False)
    assert rt.metrics.get_remote.mean > 40.0  # tens of µs per op


def test_bgl_cache_accelerates():
    rt_on, res_on, ans_on = run_on(BGL_TORUS, True)
    rt_off, res_off, ans_off = run_on(BGL_TORUS, False)
    assert ans_on == ans_off
    assert res_on.elapsed_us < res_off.elapsed_us
    assert rt_on.metrics.rdma_gets > 0


def test_bgl_remote_latency_is_low():
    # Lean cores + sub-µs torus hops → single-digit-µs remote gets.
    rt, _, _ = run_on(BGL_TORUS, True, nthreads=16, tpn=2)
    assert rt.metrics.get_remote.mean < 15.0


def test_machines_registry_contains_all_four():
    from repro.network import MACHINES
    for key in ("gm", "lapi", "tcp", "bgl"):
        assert key in MACHINES
