"""Unit tests for polling vs interrupt progress engines."""

import pytest

from repro.network import GM_TRANSPORT, LAPI_TRANSPORT
from repro.network.node import Node
from repro.network.progress import (
    InterruptProgress,
    PollingProgress,
    make_progress,
)
from repro.sim import Simulator


def make_node(params):
    sim = Simulator()
    node = Node(sim, 0, params)
    node.progress = make_progress(sim, node, params)
    return sim, node


def test_factory_picks_engine_by_params():
    _, gm_node = make_node(GM_TRANSPORT)
    _, lapi_node = make_node(LAPI_TRANSPORT)
    assert isinstance(gm_node.progress, PollingProgress)
    assert isinstance(lapi_node.progress, InterruptProgress)


def test_interrupt_services_promptly_even_without_pollers():
    sim, node = make_node(LAPI_TRANSPORT)

    def handler():
        yield from node.progress.service()
        return sim.now

    t = sim.run_process(handler())
    assert t == pytest.approx(LAPI_TRANSPORT.interrupt_us)


def test_polling_blocks_until_a_thread_enters_runtime():
    sim, node = make_node(GM_TRANSPORT)
    served_at = []

    def handler():
        yield from node.progress.service()
        served_at.append(sim.now)

    def app_thread():
        yield sim.timeout(50.0)           # long compute, no polling
        node.progress.enter_runtime()     # now inside the runtime
        yield sim.timeout(1.0)
        node.progress.leave_runtime()

    sim.process(handler())
    sim.process(app_thread())
    sim.run()
    assert served_at == [pytest.approx(50.0 + GM_TRANSPORT.dispatch_us)]


def test_polling_services_fast_when_someone_is_polling():
    sim, node = make_node(GM_TRANSPORT)
    node.progress.enter_runtime()

    def handler():
        yield from node.progress.service()
        return sim.now

    t = sim.run_process(handler())
    assert t == pytest.approx(GM_TRANSPORT.dispatch_us)


def test_poll_tick_wakes_waiting_handlers_once():
    sim, node = make_node(GM_TRANSPORT)
    served = []

    def handler():
        yield from node.progress.service()
        served.append(sim.now)

    def computer():
        yield sim.timeout(10.0)
        node.progress.poll()              # momentary tick
        yield sim.timeout(10.0)

    sim.process(handler())
    sim.process(computer())
    sim.run()
    assert served == [pytest.approx(10.0 + GM_TRANSPORT.dispatch_us)]


def test_backlog_transitions_recorded_between_poll_ticks():
    """The §4.6 backlog builds and drains entirely *between* sampler
    ticks; the progress engine must push every enqueue/drain edge the
    moment it happens, and track the peak."""
    sim, node = make_node(GM_TRANSPORT)
    edges = []

    class _Sampler:
        def backlog_transition(self, node_id, depth):
            edges.append((sim.now, node_id, depth))

    class _Metrics:
        max_backlog = 0

    node.progress.sampler = _Sampler()
    metrics = _Metrics()
    node.progress.metrics = metrics

    def handler():
        yield from node.progress.service()

    def app():
        yield sim.timeout(20.0)      # long compute slice, no polling
        node.progress.enter_runtime()

    sim.process(handler())
    sim.process(handler())
    sim.process(app())
    sim.run()
    # Two enqueues while nobody polled, then the single drain edge.
    assert [d for _, _, d in edges] == [1, 2, 0]
    assert all(nid == 0 for _, nid, _ in edges)
    assert edges[0][0] < 20.0 and edges[1][0] < 20.0
    assert node.progress.max_backlog == 2
    assert metrics.max_backlog == 2


def test_max_backlog_reaches_metrics_summary():
    from repro.runtime.metrics import RuntimeMetrics

    m = RuntimeMetrics()
    assert m.summary()["max_backlog"] == 0
    m.max_backlog = 7
    assert m.summary()["max_backlog"] == 7


def test_leave_without_enter_rejected():
    _, node = make_node(GM_TRANSPORT)
    with pytest.raises(RuntimeError):
        node.progress.leave_runtime()


def test_wait_time_accounting():
    sim, node = make_node(GM_TRANSPORT)

    def handler():
        yield from node.progress.service()

    def app():
        yield sim.timeout(30.0)
        node.progress.enter_runtime()

    sim.process(handler())
    sim.process(app())
    sim.run()
    assert node.progress.serviced == 1
    assert node.progress.wait_time == pytest.approx(
        30.0 + GM_TRANSPORT.dispatch_us)


def test_unknown_progress_kind_rejected():
    # Rejected at parameter construction (validation) ...
    with pytest.raises(ValueError):
        GM_TRANSPORT.with_overrides(progress="quantum")
    # ... and by the factory, should an invalid value sneak through.
    import dataclasses
    sim = Simulator()
    node = Node(sim, 0, GM_TRANSPORT)
    params = dataclasses.replace  # keep flake quiet
    forged = object.__new__(type(GM_TRANSPORT))
    object.__setattr__(forged, "progress", "quantum")
    with pytest.raises(ValueError):
        make_progress(sim, node, forged)
