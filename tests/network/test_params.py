"""Validation tests for the transport parameter tables."""

import pytest

from repro.network import (
    BGL_TRANSPORT,
    GM_TRANSPORT,
    LAPI_TRANSPORT,
    TCP_TRANSPORT,
)


def test_shipped_tables_are_valid():
    # Construction itself validates; just touch all four.
    for t in (GM_TRANSPORT, LAPI_TRANSPORT, TCP_TRANSPORT, BGL_TRANSPORT):
        assert t.wire_time(1000) > 0
        assert t.fragments(t.frag_bytes + 1) == 2


def test_negative_overhead_rejected():
    with pytest.raises(ValueError, match="o_send_us"):
        GM_TRANSPORT.with_overrides(o_send_us=-1.0)


def test_zero_bandwidth_rejected():
    with pytest.raises(ValueError, match="byte_time_us"):
        GM_TRANSPORT.with_overrides(byte_time_us=0.0)


def test_bad_sizes_rejected():
    with pytest.raises(ValueError):
        GM_TRANSPORT.with_overrides(ctrl_bytes=0)
    with pytest.raises(ValueError):
        GM_TRANSPORT.with_overrides(frag_bytes=0)
    with pytest.raises(ValueError):
        GM_TRANSPORT.with_overrides(eager_max_bytes=-1)


def test_bad_concurrency_rejected():
    with pytest.raises(ValueError):
        GM_TRANSPORT.with_overrides(eager_credits=0)
    with pytest.raises(ValueError):
        GM_TRANSPORT.with_overrides(handler_concurrency=0)


def test_unknown_progress_rejected():
    with pytest.raises(ValueError, match="progress"):
        GM_TRANSPORT.with_overrides(progress="psychic")


def test_paper_cited_limits_in_tables():
    from repro.util.units import GB, MB
    assert GM_TRANSPORT.max_pin_total_bytes == 1 * GB       # §3.3
    assert LAPI_TRANSPORT.max_pin_region_bytes == 32 * MB   # §3.2
    assert not TCP_TRANSPORT.supports_rdma
    # HPS is rated 8x Myrinet (§4.3).
    ratio = GM_TRANSPORT.byte_time_us / LAPI_TRANSPORT.byte_time_us
    assert ratio == pytest.approx(8.0, rel=0.01)


def test_with_overrides_returns_new_frozen_instance():
    t = GM_TRANSPORT.with_overrides(dispatch_us=2.0)
    assert t.dispatch_us == 2.0
    assert GM_TRANSPORT.dispatch_us != 2.0
    with pytest.raises(Exception):
        t.dispatch_us = 3.0  # frozen
