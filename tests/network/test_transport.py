"""Unit tests for the AM + RDMA transport protocols."""

import pytest

from repro.network import (
    Cluster,
    GM_MARENOSTRUM,
    LAPI_POWER5,
)
from repro.sim import Simulator
from repro.util import KB, MB


def make(machine=GM_MARENOSTRUM, nnodes=4):
    sim = Simulator()
    cluster = Cluster(sim, machine, nnodes)
    # A benchmark-style idle target: someone is polling everywhere.
    for node in cluster.nodes:
        node.progress.enter_runtime()
    return sim, cluster


def test_default_get_roundtrip_returns_handler_payload():
    sim, cluster = make()
    src, dst = cluster.node(0), cluster.node(1)

    def handler(node):
        return 1.5, {"base": 0xBEEF}, 16

    def bench():
        reply = yield from cluster.transport.default_get(src, dst, 8, handler)
        return reply

    reply = sim.run_process(bench())
    assert reply.payload == {"base": 0xBEEF}
    assert reply.completed_at == sim.now
    assert cluster.transport.counters.am_requests == 1
    assert cluster.transport.counters.eager_transfers == 1


def test_default_get_latency_grows_with_distance():
    sim1, c1 = make()
    sim2, c2 = make()

    def bench(sim, cluster, dst_id):
        def run():
            yield from cluster.transport.default_get(
                cluster.node(0), cluster.node(dst_id), 8)
            return sim.now
        return sim.run_process(run())

    near = bench(sim1, c1, 1)             # same linecard: 1 hop
    sim3, c3 = make(nnodes=256)
    far = bench(sim3, c3, 200)            # cross-group: 5 hops
    assert far > near


def test_rdma_get_faster_than_default_get_small_gm():
    # The core premise of the optimization (Figure 3, Figure 7).
    sim, cluster = make()
    src, dst = cluster.node(0), cluster.node(1)

    def default():
        t0 = sim.now
        yield from cluster.transport.default_get(src, dst, 8,
                                                 lambda n: (1.5, None, 0))
        return sim.now - t0

    def rdma():
        t0 = sim.now
        yield from cluster.transport.rdma_get(src, dst, 8)
        return sim.now - t0

    t_default = sim.run_process(default())
    t_rdma = sim.run_process(rdma())
    assert t_rdma < t_default


def test_rdma_get_uses_no_target_cpu():
    # Target node never polls: the AM path would deadlock-wait, RDMA
    # must complete regardless (Figure 3b: no CPU involvement).
    sim = Simulator()
    cluster = Cluster(sim, GM_MARENOSTRUM, 2)

    def run():
        yield from cluster.transport.rdma_get(
            cluster.node(0), cluster.node(1), 4096)
        return sim.now

    t = sim.run_process(run())
    assert t > 0
    assert cluster.node(1).progress.serviced == 0


def test_eager_vs_rendezvous_protocol_selection():
    sim, cluster = make()
    tr = cluster.transport
    src, dst = cluster.node(0), cluster.node(1)

    def run(n):
        yield from tr.default_get(src, dst, n)

    sim.run_process(run(16 * KB))           # at the threshold: eager
    assert tr.counters.eager_transfers == 1
    sim.run_process(run(16 * KB + 1))       # above: rendezvous
    assert tr.counters.rendezvous_transfers == 1


def test_rendezvous_registration_amortized_by_pin_down_cache():
    sim, cluster = make()
    tr = cluster.transport
    src, dst = cluster.node(0), cluster.node(1)

    def run():
        t0 = sim.now
        yield from tr.default_get(src, dst, 1 * MB)
        first = sim.now - t0
        t0 = sim.now
        yield from tr.default_get(src, dst, 1 * MB)
        second = sim.now - t0
        return first, second

    first, second = sim.run_process(run())
    assert second < first                  # registration cached
    assert dst.reg_cache.hits >= 1


def test_default_put_local_completion_before_remote_apply():
    sim, cluster = make()
    src, dst = cluster.node(0), cluster.node(1)

    def run():
        ticket = yield from cluster.transport.default_put(src, dst, 256)
        local_done = sim.now
        yield ticket.remote_applied
        return local_done, sim.now

    local_done, remote_done = sim.run_process(run())
    assert remote_done > local_done        # overlap window exists


def test_rdma_put_gm_completes_locally():
    sim, cluster = make()
    src, dst = cluster.node(0), cluster.node(1)

    def run():
        ticket = yield from cluster.transport.rdma_put(src, dst, 256)
        local_done = sim.now
        yield ticket.remote_applied
        return local_done, sim.now

    local_done, remote_done = sim.run_process(run())
    assert remote_done > local_done


def test_rdma_put_lapi_waits_for_remote_ack():
    sim, cluster = make(LAPI_POWER5, 2)
    src, dst = cluster.node(0), cluster.node(1)

    def run():
        ticket = yield from cluster.transport.rdma_put(src, dst, 256)
        local_done = sim.now
        assert ticket.remote_applied.triggered
        return local_done

    sim.run_process(run())


def test_lapi_rdma_put_slower_than_default_put_small():
    # Figure 6 right panel: the -200% effect, the reason the paper
    # disabled the cache for LAPI PUTs.
    sim, cluster = make(LAPI_POWER5, 2)
    src, dst = cluster.node(0), cluster.node(1)

    def t_default():
        t0 = sim.now
        yield from cluster.transport.default_put(src, dst, 64)
        return sim.now - t0

    def t_rdma():
        t0 = sim.now
        ticket = yield from cluster.transport.rdma_put(src, dst, 64)
        _ = ticket
        return sim.now - t0

    td = sim.run_process(t_default())
    tr = sim.run_process(t_rdma())
    assert tr > 1.5 * td


def test_nic_is_shared_between_concurrent_senders():
    sim, cluster = make()
    src, dst = cluster.node(0), cluster.node(1)
    done = []

    def sender(tag):
        yield from cluster.transport.default_put(src, dst, 8 * KB)
        done.append((tag, sim.now))

    sim.process(sender("a"))
    sim.process(sender("b"))
    sim.run()
    # Serialization through the single NIC staggers completions.
    assert done[0][1] < done[1][1]


def test_am_oneway_completes_at_target():
    sim, cluster = make()
    seen = []

    def handler(node):
        seen.append(node.id)
        return 0.5, None, 0

    ev = cluster.transport.am_oneway(cluster.node(0), cluster.node(2),
                                     64, handler)
    sim.run()
    assert ev.triggered
    assert seen == [2]


def test_wire_time_and_copy_time_scale_linearly():
    p = GM_MARENOSTRUM.transport
    assert p.wire_time(2000) == pytest.approx(2 * p.wire_time(1000))
    assert p.copy_time(2000) == pytest.approx(2 * p.copy_time(1000))
    assert p.fragments(1) == 1
    assert p.fragments(p.frag_bytes + 1) == 2


def test_cluster_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Cluster(sim, GM_MARENOSTRUM, 0)
