"""Transport byte/counter accounting invariants."""

import pytest

from repro.network import Cluster, GM_MARENOSTRUM
from repro.sim import Simulator
from repro.util import KB, MB


def make(nnodes=3):
    sim = Simulator()
    cluster = Cluster(sim, GM_MARENOSTRUM, nnodes)
    for node in cluster.nodes:
        node.progress.enter_runtime()
    return sim, cluster


def test_counters_track_every_operation():
    sim, cluster = make()
    tr = cluster.transport
    a, b, c = cluster.nodes

    def run():
        yield from tr.default_get(a, b, 256)          # eager AM
        yield from tr.default_get(a, c, 1 * MB)       # rendezvous AM
        yield from tr.rdma_get(a, b, 512)
        t1 = yield from tr.default_put(a, c, 128)
        t2 = yield from tr.rdma_put(a, b, 128)
        yield t1.remote_applied
        _ = t2

    sim.run_process(run())
    sim.run()
    assert tr.counters.am_requests == 3
    assert tr.counters.am_replies == 2               # puts don't reply
    assert tr.counters.rdma_gets == 1
    assert tr.counters.rdma_puts == 1
    assert tr.counters.eager_transfers == 2          # small get + put
    assert tr.counters.rendezvous_transfers == 1
    assert tr.counters.bytes_rdma == 512 + 128
    assert tr.counters.bytes_am >= 256 + 1 * MB + 128


def test_wire_log_bytes_at_least_payload():
    sim, cluster = make(2)
    tr = cluster.transport
    log = tr.enable_log()

    def run():
        yield from tr.default_get(cluster.node(0), cluster.node(1),
                                  8 * KB)

    sim.run_process(run())
    # Request + reply; reply carries payload + headers.
    assert log.total_bytes() >= 8 * KB + 2 * tr.params.ctrl_bytes


def test_latency_monotone_in_message_size():
    sim, cluster = make(2)
    tr = cluster.transport

    def timed(n):
        def run():
            t0 = sim.now
            yield from tr.default_get(cluster.node(0), cluster.node(1), n)
            return sim.now - t0
        return sim.run_process(run())

    sizes = [1, 64, 4 * KB, 64 * KB, 1 * MB]
    lats = [timed(n) for n in sizes]
    # Warm path (registration cached): latency must be non-decreasing.
    assert all(a <= b * 1.001 for a, b in zip(lats, lats[1:]))


def test_zero_latency_for_self_wire():
    sim, cluster = make(2)
    topo = cluster.topology
    assert topo.latency(1, 1) == 0.0
    assert topo.latency(0, 1) > 0.0
