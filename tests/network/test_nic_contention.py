"""NIC sharing and handler contention — the section 4.6 amplification.

"In hybrid execution mode the network device is shared by all UPC
threads running on a blade ... with four threads competing for the
same network device any improvement in network device access time is
magnified fourfold."
"""

from dataclasses import replace

import pytest

from repro.network import Cluster, GM_MARENOSTRUM
from repro.sim import Simulator
from repro.util import KB
from repro.workloads import PointerParams, run_pointer


def _pointer_improvement(threads_per_node: int) -> float:
    params = PointerParams(
        machine=GM_MARENOSTRUM, nthreads=16,
        threads_per_node=threads_per_node,
        nelems=1 << 13, hops=48, seed=2, work_us=0.1)
    on = run_pointer(params)
    off = run_pointer(replace(params, cache_enabled=False))
    assert on.check == off.check
    return 100 * (1 - on.elapsed_us / off.elapsed_us)


def test_hybrid_amplification_with_shared_nic():
    # More threads per blade -> more contention on NIC + handler CPU
    # -> larger cache benefit (section 4.6's Pointer explanation).
    imp_1 = _pointer_improvement(1)
    imp_4 = _pointer_improvement(4)
    assert imp_4 > imp_1 + 5.0


def test_nic_utilization_reported():
    sim = Simulator()
    cluster = Cluster(sim, GM_MARENOSTRUM, 2)
    for node in cluster.nodes:
        node.progress.enter_runtime()

    def sender():
        for _ in range(10):
            yield from cluster.transport.default_put(
                cluster.node(0), cluster.node(1), 8 * KB)

    sim.run_process(sender())
    util = cluster.node(0).nic.utilization()
    assert 0.0 < util <= 1.0
    assert cluster.node(0).nic.acquisitions >= 10


def test_handler_queueing_grows_under_load():
    """Concurrent AM GETs from many threads serialize on the target's
    handler CPU; the wait statistics must show queueing."""
    sim = Simulator()
    cluster = Cluster(sim, GM_MARENOSTRUM, 2)
    for node in cluster.nodes:
        node.progress.enter_runtime()
    target = cluster.node(1)

    def requester():
        yield from cluster.transport.default_get(
            cluster.node(0), target, 64,
            lambda n: (2.0, None, 0))

    for _ in range(8):
        sim.process(requester())
    sim.run()
    assert target.handler_cpu.wait_stats.max > 0.0
    assert target.handler_cpu.acquisitions == 8


def test_fragmentation_charges_per_fragment_gap():
    """An eager transfer pays the NIC gap once per frag_bytes chunk —
    large eager messages are measurably slower than a hypothetical
    single-fragment send."""
    sim = Simulator()
    cluster = Cluster(sim, GM_MARENOSTRUM, 2)
    for node in cluster.nodes:
        node.progress.enter_runtime()
    p = cluster.params
    nbytes = 8 * KB   # 2 fragments on GM

    def run_once():
        t0 = sim.now
        yield from cluster.transport.default_get(
            cluster.node(0), cluster.node(1), nbytes)
        return sim.now - t0

    measured = sim.run_process(run_once())
    frags = p.fragments(nbytes + p.ctrl_bytes)
    assert frags >= 2
    # Lower bound: wire + copies + one gap; measured must include the
    # extra per-fragment gaps.
    assert measured > p.wire_time(nbytes) + 2 * p.copy_time(nbytes)
