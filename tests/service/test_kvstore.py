"""Unit tests for the PGAS-resident KV store (both access paths)."""

import numpy as np
import pytest

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig
from repro.service import (ACCESS_PATHS, KV_MISSING, KVFullError,
                           KVStoreError, bucket_of, kv_create)


def run_kernel(kernel, nthreads=8, tpn=2, machine=GM_MARENOSTRUM, **kw):
    cfg = RuntimeConfig(machine=machine, nthreads=nthreads,
                        threads_per_node=tpn, **kw)
    rt = Runtime(cfg)
    rt.spawn(kernel)
    return rt, rt.run()


@pytest.mark.parametrize("access", ACCESS_PATHS)
def test_put_get_delete_roundtrip(access):
    """Every thread writes its own keys; every thread reads them all
    back; deletes report presence truthfully."""
    out = {}

    def kernel(th):
        store = yield from kv_create(th, nbuckets=16, slots_per_bucket=4,
                                     access=access)
        yield from store.put(th, th.id, 100 + th.id)
        yield from th.barrier()
        got = []
        for key in range(th.nthreads):
            v = yield from store.get(th, key)
            got.append(v)
        missing = yield from store.get(th, 999)
        yield from th.barrier()
        existed = yield from store.delete(th, th.id)
        ghost = yield from store.delete(th, 500 + th.id)
        yield from th.barrier()
        gone = yield from store.get(th, (th.id + 1) % th.nthreads)
        out[th.id] = (got, missing, existed, ghost, gone)
        if th.id == 0:
            out["snapshot"] = store.snapshot()

    run_kernel(kernel)
    for tid in range(8):
        got, missing, existed, ghost, gone = out[tid]
        assert got == [100 + k for k in range(8)]
        assert missing == KV_MISSING
        assert existed is True
        assert ghost is False
        assert gone == KV_MISSING
    assert out["snapshot"] == {}


@pytest.mark.parametrize("access", ACCESS_PATHS)
def test_put_overwrites_in_place(access):
    def kernel(th):
        store = yield from kv_create(th, nbuckets=4, slots_per_bucket=2,
                                     access=access)
        if th.id == 0:
            for v in (1, 2, 3):
                yield from store.put(th, 5, v)
        yield from th.barrier()
        v = yield from store.get(th, 5)
        assert v == 3
        if th.id == 0:
            assert store.snapshot() == {5: 3}

    run_kernel(kernel)


@pytest.mark.parametrize("access", ACCESS_PATHS)
def test_multi_get_mixed_hit_miss(access):
    def kernel(th):
        store = yield from kv_create(th, nbuckets=8, slots_per_bucket=4,
                                     access=access)
        if th.id == 0:
            for k in range(10):
                yield from store.put(th, k, k * k)
        yield from th.barrier()
        keys = [9, 0, 77, 3, 3, 12]
        vals = yield from store.multi_get(th, keys)
        assert vals == [81, 0, KV_MISSING, 9, 9, KV_MISSING]

    run_kernel(kernel)


@pytest.mark.parametrize("access", ACCESS_PATHS)
def test_bucket_overflow_raises(access):
    """A bucket holds ``slots`` distinct keys; one more raises, and the
    store is left unchanged (the failed put writes nothing)."""
    caught = []

    def kernel(th):
        store = yield from kv_create(th, nbuckets=1, slots_per_bucket=2,
                                     access=access)
        if th.id == 0:
            yield from store.put(th, 0, 10)
            yield from store.put(th, 1, 11)
            try:
                yield from store.put(th, 2, 12)
            except KVFullError:
                caught.append(True)
            # Overwriting a resident key must still work when full.
            yield from store.put(th, 0, 99)
            assert store.snapshot() == {0: 99, 1: 11}
        yield from th.barrier()

    run_kernel(kernel)
    assert caught == [True]


def test_rpc_requires_bucket_aligned_blocksize():
    def kernel(th):
        with pytest.raises(KVStoreError):
            yield from kv_create(th, nbuckets=4, slots_per_bucket=2,
                                 access="rpc", blocksize=3)
        yield from th.barrier()

    run_kernel(kernel, nthreads=2, tpn=1)


def test_key_value_validation():
    def kernel(th):
        store = yield from kv_create(th, nbuckets=4, slots_per_bucket=2)
        if th.id == 0:
            with pytest.raises(KVStoreError):
                yield from store.put(th, -1, 5)
            with pytest.raises(KVStoreError):
                yield from store.put(th, 0, -5)
            with pytest.raises(KVStoreError):
                yield from store.get(th, 2 ** 62)
        yield from th.barrier()

    run_kernel(kernel, nthreads=2, tpn=1)


def test_unknown_access_path_rejected():
    def kernel(th):
        with pytest.raises(KVStoreError):
            yield from kv_create(th, nbuckets=4, access="telepathy")
        yield from th.barrier()

    run_kernel(kernel, nthreads=2, tpn=1)


def test_bucket_of_is_total():
    assert all(0 <= bucket_of(k, 7) < 7 for k in range(100))


def test_access_paths_produce_identical_bucket_images():
    """The same op sequence through one-sided and RPC paths must leave
    byte-identical backing arrays — slot choice is deterministic."""
    images = {}

    def make_kernel(access):
        def kernel(th):
            store = yield from kv_create(
                th, nbuckets=8, slots_per_bucket=4, access=access,
                blocksize=8)
            if th.id == 0:
                for k in (3, 11, 19, 3, 5):   # collisions + overwrite
                    yield from store.put(th, k, 1000 + k)
                yield from store.delete(th, 11)
                yield from store.put(th, 27, 7)  # reuses 11's slot
            yield from th.barrier()
            if th.id == 0:
                images[access] = np.array(store.array.data, copy=True)
        return kernel

    for access in ACCESS_PATHS:
        run_kernel(make_kernel(access))
    assert np.array_equal(images["onesided"], images["rpc"])


def test_metrics_counters():
    def kernel(th):
        store = yield from kv_create(th, nbuckets=8, access="rpc",
                                     blocksize=8)
        if th.id == 0:
            yield from store.put(th, 1, 2)
            yield from store.get(th, 1)
            yield from store.multi_get(th, [1, 2])
            yield from store.delete(th, 1)
        yield from th.barrier()

    rt, _ = run_kernel(kernel)
    m = rt.metrics
    assert m.kv_puts == 1 and m.kv_gets == 1
    assert m.kv_mgets == 1 and m.kv_dels == 1
    assert m.kv_rpc_ops > 0 and m.kv_onesided_ops == 0


def _kv_spans(access):
    """Run one op of each kind with the flight recorder on and return
    OP_END attrs grouped by span name."""
    from repro.obs.events import EventLog, OP_BEGIN, OP_END

    log = EventLog(enabled=True)
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=8,
                        threads_per_node=2, events=log)
    rt = Runtime(cfg)
    locks = [rt.alloc_lock()] if access == "onesided" else None

    def kernel(th):
        store = yield from kv_create(th, nbuckets=8, access=access,
                                     blocksize=8, locks=locks)
        if th.id == 0:
            yield from store.put(th, 3, 30)
            yield from store.put(th, 11, 110)   # collides with 3
            yield from store.get(th, 11)
            yield from store.get(th, 999)       # miss
            yield from store.multi_get(th, [3, 11])
            yield from store.delete(th, 3)
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()
    begins = {e.op: e.attrs["name"] for e in log if e.kind == OP_BEGIN}
    spans = {}
    for e in log:
        if e.kind == OP_END and e.op in begins:
            spans.setdefault(begins[e.op], []).append(e.attrs)
    return spans


def test_rpc_spans_carry_rtt_and_home():
    spans = _kv_spans("rpc")
    for name in ("kv_put", "kv_get", "kv_mget", "kv_del"):
        for at in spans[name]:
            assert at["path"] == "rpc"
            assert at["am_rtt_us"] > 0
    hit, miss = spans["kv_get"]
    assert hit["hit"] is True and miss["hit"] is False
    assert all("home" in at for at in spans["kv_put"])
    assert spans["kv_mget"][0]["nhomes"] >= 1


def test_onesided_spans_carry_scan_depth_and_lock_hold():
    spans = _kv_spans("onesided")
    hit, miss = spans["kv_get"]
    assert hit["path"] == "onesided"
    # key 11 shares a bucket with key 3 and was inserted second
    assert hit["scan_depth"] == 2
    assert miss["scan_depth"] >= hit["scan_depth"]
    for at in spans["kv_put"] + spans["kv_del"]:
        assert at["lock_hold_us"] > 0
    # both keys share one bucket, so the vectored fetch touches one span
    assert spans["kv_mget"][0]["nbuckets"] == 1
