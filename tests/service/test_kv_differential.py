"""Service-level differential suite.

Generated kv-traffic programs (store churn + put/get/delete/multi-get
interleaved with alloc/free churn) replayed across the config matrix
against the flat-dict oracle — healthy and under chaos fault plans —
plus the guard-the-guards mutation check: a store that corrupts values
must be *caught* as a divergence and *shrunk* to a runnable pytest
reproducer containing the kv ops.
"""

import pytest

from repro.faults import resolve_profile
from repro.service.kvstore import KVStore
from repro.testing import (
    QUICK_MATRIX,
    config_by_name,
    generate_service_program,
    run_differential,
    shrink,
    validate,
)


# ---------------------------------------------------------------------------
# Fixed-seed kv programs across the quick matrix
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_fixed_seed_kv_programs_quick_matrix(seed):
    program = generate_service_program(seed, n_ops=110)
    validate(program)
    assert any(op.kind.startswith("kv") for op in program.iter_ops())
    divs = run_differential(program, configs=list(QUICK_MATRIX))
    assert not divs, "\n\n".join(d.describe() for d in divs)


def test_generated_corpus_exercises_both_access_paths():
    accesses = set()
    for seed in range(8):
        program = generate_service_program(seed, n_ops=110)
        accesses |= {op.args["access"] for op in program.iter_ops()
                     if op.kind == "kv_create"}
    assert accesses == {"onesided", "rpc"}


def test_service_generator_is_deterministic_per_seed():
    a = generate_service_program(5, n_ops=90)
    b = generate_service_program(5, n_ops=90)
    assert a.dumps() == b.dumps()


# ---------------------------------------------------------------------------
# Chaos: the differential property must hold under faults too
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 3])
def test_kv_programs_hold_under_chaos(seed):
    plan = resolve_profile("chaos", 1000003 * seed + 17)
    program = generate_service_program(seed, n_ops=100)
    divs = run_differential(
        program,
        configs=[config_by_name("gm-base"), config_by_name("gm-nocache")],
        fault_plan=plan)
    assert not divs, "\n\n".join(d.describe() for d in divs)


# ---------------------------------------------------------------------------
# Mutation: a corrupted store must be caught and shrunk (satellite 1)
# ---------------------------------------------------------------------------

def test_mutation_corrupted_kv_put_is_caught_and_shrunk(monkeypatch):
    """Flip one bit in every stored value (both access paths route
    through :meth:`KVStore.put`); the differential runner must flag
    it, and the shrinker must reduce the reproducer to a handful of
    ops whose pytest snippet still contains the kv traffic."""
    real_put = KVStore.put

    def corrupting_put(self, th, key, value):
        return real_put(self, th, key, int(value) ^ 1)

    monkeypatch.setattr(KVStore, "put", corrupting_put)
    points = [config_by_name("gm-base")]
    program = None
    for seed in range(6):
        cand = generate_service_program(seed, n_ops=110)
        if run_differential(cand, configs=points, stop_on_first=True):
            program = cand
            break
    assert program is not None, "corrupted kv put survived 6 seeds"

    def still_fails(candidate):
        return bool(run_differential(candidate, configs=points,
                                     stop_on_first=True))

    small = shrink(program, still_fails)
    assert small.n_ops <= 12, (
        f"shrinker left {small.n_ops} ops:\n{small.dumps(indent=2)}")
    assert still_fails(small)
    assert any(op.kind == "kv_put" for op in small.iter_ops())
    snippet = small.to_pytest_snippet(config_name="gm-base")
    assert "run_differential" in snippet and "kv_put" in snippet


# ---------------------------------------------------------------------------
# CLI plumbing
# ---------------------------------------------------------------------------

def test_cli_fuzz_kv_smoke(capsys):
    from repro.__main__ import main
    rc = main(["fuzz", "--seed", "0", "--ops", "80", "--quick", "--kv"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "OK" in out and "kv" in out
