"""Properties of the traffic generator's statistics (satellite 2).

Hypothesis-driven checks that the synthetic load is what it claims:
Zipfian keys with the configured rank-frequency slope, Poisson
arrivals with the configured inter-arrival mean, and entity-keyed
random streams that are byte-identical across shard layouts (the
foundation of the harness's layout invariance).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import StreamFamily
from repro.workloads.kv_traffic import (
    HIST_BINS,
    PoissonArrivals,
    TrafficParams,
    ZipfianKeys,
    hist_edges,
    hist_quantile,
    run_kv_traffic,
)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2 ** 32 - 1),
       s=st.sampled_from([0.7, 0.9, 1.1, 1.3]))
def test_zipf_rank_frequency_slope(seed, s):
    """log(freq) vs log(rank) over the head of the distribution must
    regress to slope -s (rank order is key order by construction)."""
    n = 200_000
    keys = ZipfianKeys(1024, s).draw(np.random.default_rng(seed), n)
    counts = np.bincount(keys, minlength=1024)
    head = 32
    freq = counts[:head] / n
    assert freq.min() > 0
    slope = np.polyfit(np.log(np.arange(1, head + 1)),
                       np.log(freq), 1)[0]
    assert abs(slope + s) < 0.1, f"slope {slope:.3f} for s={s}"


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2 ** 32 - 1),
       mean=st.floats(0.5, 50.0))
def test_poisson_interarrival_mean(seed, mean):
    n = 100_000
    proc = PoissonArrivals(mean)
    gaps = proc.gaps(np.random.default_rng(seed), n)
    assert (gaps > 0).all()
    assert abs(gaps.mean() - mean) / mean < 0.05
    sched = proc.schedule(np.random.default_rng(seed), n)
    assert np.allclose(np.diff(sched), gaps[1:])


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2 ** 32 - 1))
def test_entity_keyed_streams_are_layout_invariant(seed):
    """Different shard layouts instantiate clients in different orders
    and on different processes; per-client draws must not care."""
    fam_a = StreamFamily(seed, "kv-traffic")
    fam_b = StreamFamily(seed, "kv-traffic")
    clients = [0, 1, 2, 3, 4, 5]
    draws_a = {c: fam_a.child("keys").rng(c).random(64).tobytes()
               for c in clients}
    draws_b = {c: fam_b.child("keys").rng(c).random(64).tobytes()
               for c in reversed(clients)}
    assert draws_a == draws_b


def test_zipf_identical_streams_for_identical_seeds():
    z = ZipfianKeys(512, 0.9)
    a = z.draw(StreamFamily(7, "kv-traffic").child("keys").rng(3), 1000)
    b = z.draw(StreamFamily(7, "kv-traffic").child("keys").rng(3), 1000)
    assert np.array_equal(a, b)


def test_hist_quantile_geometry():
    edges = hist_edges()
    assert len(edges) == HIST_BINS + 1
    assert np.all(np.diff(edges) > 0)
    hist = np.zeros(HIST_BINS, dtype=np.int64)
    hist[10] = 100
    q = hist_quantile(hist, 0.5)
    assert edges[10] < q <= edges[11] or q == edges[11]
    assert hist_quantile(np.zeros(HIST_BINS, dtype=np.int64), 0.5) == 0.0


@pytest.mark.shard
def test_traffic_run_is_shard_layout_invariant():
    p = TrafficParams(nnodes=4, nclients=8, nkeys=256, nbuckets=64,
                      requests=4000, seed=3)
    a = run_kv_traffic(p, nshards=1)
    b = run_kv_traffic(p, nshards=2)
    assert a.requests == b.requests == 4000
    assert a.digests == b.digests
    assert np.array_equal(a.hist, b.hist)
    assert np.array_equal(a.hist_hit, b.hist_hit)
    assert np.array_equal(a.hist_miss, b.hist_miss)
    assert a.quantiles() == b.quantiles()
    assert a.conns == b.conns
