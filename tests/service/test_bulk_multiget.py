"""Bulk-engine multi-get (satellite 4).

A one-sided store built with a sub-span blocksize makes every bucket
straddle affinity boundaries, so each fetch is split into per-home
segments and the vectored path coalesces same-home segments into
single wire messages.  None of that may be observable in the data: a
batched fetch must match N scalar memgets byte for byte — on a healthy
fabric and under fault plans (where retries/fallbacks reorder wire
traffic).
"""

import numpy as np
import pytest

from repro.faults import resolve_profile
from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig
from repro.service import KV_MISSING, kv_create

KEYS = [0, 13, 7, 25, 100, 13, 31]


def _run(kernel, fault_plan=None):
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=8,
                        threads_per_node=2, fault_plan=fault_plan)
    rt = Runtime(cfg)
    rt.spawn(kernel)
    rt.run()
    return rt


@pytest.mark.parametrize("profile", [None, "drop", "chaos"])
def test_batched_bucket_fetch_matches_scalar_memgets(profile):
    plan = resolve_profile(profile, 23) if profile is not None else None
    done = []

    def kernel(th):
        # blocksize=2 < span=8: every bucket crosses affinity
        # boundaries, so the batched fetch exercises segment
        # splitting and cross-home pipelining.
        store = yield from kv_create(th, nbuckets=12, slots_per_bucket=4,
                                     access="onesided", blocksize=2)
        if th.id == 0:
            for k in range(30):
                yield from store.put(th, k, 7 * k + 1)
        yield from th.barrier()
        if th.id == 5:
            buckets = sorted({store.bucket_of(k) for k in KEYS})
            spans = [(store._base(b), store.span) for b in buckets]
            batched = yield from th.memget_v(store.array, spans)
            for (base, n), got in zip(spans, batched):
                want = yield from th.memget(store.array, base, n)
                assert got.tobytes() == want.tobytes(), (
                    f"batched fetch of [{base}:{base + n}] diverged")
            vals = yield from store.multi_get(th, KEYS)
            for k, v in zip(KEYS, vals):
                want = yield from store.get(th, k)
                assert v == want
            expect = [7 * k + 1 if k < 30 else KV_MISSING for k in KEYS]
            assert vals == expect
            done.append(True)
        yield from th.barrier()

    rt = _run(kernel, plan)
    assert done == [True]
    m = rt.metrics
    assert m.kv_mgets == 1
    assert m.bulk_transfers > 0
    # Sub-span blocks force more planned segments than buckets fetched.
    assert m.bulk_segments > len(set(k % 12 for k in KEYS))
    if plan is not None:
        assert m.faults_injected > 0, "fault plan injected nothing"


def test_multi_get_empty_and_single_bucket():
    results = {}

    def kernel(th):
        store = yield from kv_create(th, nbuckets=4, slots_per_bucket=4,
                                     access="onesided", blocksize=2)
        if th.id == 0:
            yield from store.put(th, 2, 5)
            results["empty"] = (yield from store.multi_get(th, []))
            # Duplicate keys of one bucket: one span fetched, values
            # replicated in input order.
            results["dup"] = (yield from store.multi_get(th, [2, 2, 6]))
        yield from th.barrier()

    _run(kernel)
    assert results["empty"] == []
    assert results["dup"] == [5, 5, KV_MISSING]
