"""Replay the checked-in kv regression corpus.

``tests/service/corpus/`` holds fixed generator outputs picked so the
set covers both access paths and all four kv op kinds.  Each program
must replay cleanly across the quick matrix, and — shard-marked — the
sharded skeleton must produce bit-identical merged state for shard
layouts {1, 2, 4}, with every surviving kv image decoding to exactly
the oracle's flat dict.
"""

import glob
import os

import pytest

from repro.testing import (
    Program,
    QUICK_MATRIX,
    run_differential,
    run_oracle,
    validate,
)
from repro.workloads.sharded import run_corpus_sharded, skeleton_kv_dict

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))
IDS = [os.path.basename(p) for p in CORPUS]


def _load(path: str) -> Program:
    with open(path, encoding="utf-8") as fh:
        program = Program.loads(fh.read())
    validate(program)
    return program


def test_corpus_is_not_empty():
    assert CORPUS, f"no programs in {CORPUS_DIR}"


def test_corpus_covers_both_paths_and_all_kv_ops():
    kinds, accesses = set(), set()
    for path in CORPUS:
        for op in _load(path).iter_ops():
            kinds.add(op.kind)
            if op.kind == "kv_create":
                accesses.add(op.args["access"])
    assert {"kv_get", "kv_put", "kv_del", "kv_mget"} <= kinds
    assert accesses == {"onesided", "rpc"}


@pytest.mark.parametrize("path", CORPUS, ids=IDS)
def test_corpus_program_replays_clean(path):
    program = _load(path)
    divs = run_differential(program, configs=list(QUICK_MATRIX))
    assert not divs, "\n\n".join(d.describe() for d in divs)


@pytest.mark.parametrize("path", CORPUS, ids=IDS)
def test_corpus_json_roundtrip(path):
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    program = Program.loads(text)
    assert program.dumps() == Program.loads(program.dumps()).dumps()


# ---------------------------------------------------------------------------
# Sharded layout invariance + oracle agreement
# ---------------------------------------------------------------------------

@pytest.mark.shard
@pytest.mark.parametrize("path", CORPUS, ids=IDS)
def test_corpus_sharded_layout_invariance(path):
    program = _load(path)
    base = run_corpus_sharded(program, 1)
    for nshards in (2, 4):
        r = run_corpus_sharded(program, nshards)
        assert r["mem"] == base["mem"]
        assert r["kvinfo"] == base["kvinfo"]
        assert r["digests"] == base["digests"]
        assert r["finish"] == base["finish"]
        assert r["now"] == base["now"]
    # Every kv store alive at program end must decode to the oracle's
    # flat model dict, bucket geometry and all.
    oracle = run_oracle(program)
    for key in base["kvinfo"]:
        obj = int(key.split(":")[0])
        assert skeleton_kv_dict(base["mem"][key]) == oracle.final[obj]


@pytest.mark.shard
def test_corpus_has_live_kv_state_to_check():
    """Guard the guard: at least one corpus program must end with a
    live kv store, or the oracle-agreement loop above is vacuous."""
    total = 0
    for path in CORPUS:
        out = run_corpus_sharded(_load(path), 1)
        total += len(out["kvinfo"])
    assert total > 0
