"""``RuntimeMetrics.summary()`` must be a pure read (satellite 3).

The rollups fold shard metrics with fresh ``RunningStats`` every call;
a regression that mutates state while summarizing (or double-counts on
re-attach) would silently skew every table the harness renders.
"""

import pytest

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig
from repro.runtime.metrics import RuntimeMetrics
from repro.service import kv_create
from repro.testing import generate_service_program
from repro.workloads.sharded import run_corpus_sharded


def test_summary_idempotent_on_fresh_metrics():
    m = RuntimeMetrics()
    assert m.summary() == m.summary()


def test_summary_idempotent_after_real_run():
    def kernel(th):
        store = yield from kv_create(th, nbuckets=8, slots_per_bucket=2)
        yield from store.put(th, th.id, th.id + 1)
        yield from th.barrier()
        yield from store.get(th, (th.id + 3) % th.nthreads)
        yield from th.barrier()

    rt = Runtime(RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=8,
                               threads_per_node=2))
    rt.spawn(kernel)
    rt.run()
    first = rt.metrics.summary()
    second = rt.metrics.summary()
    assert first == second
    # The percentile estimators behind the summary must not have been
    # fed by the summary call itself.
    assert rt.metrics.get_remote_digest.p50.count == \
        rt.metrics.get_remote_digest.p50.count


@pytest.mark.shard
def test_summary_idempotent_with_shard_rollups():
    program = generate_service_program(3, n_ops=60)
    out = run_corpus_sharded(program, 2)
    m = RuntimeMetrics()
    m.attach_shards(out["run"].metrics)
    first = m.summary()
    assert set(first) >= {"shards", "shard_events_total", "sync_rounds"}
    assert first["shards"] == 2
    assert first == m.summary()
    # Re-attaching the same shard list replaces it — no double count.
    m.attach_shards(out["run"].metrics)
    assert m.summary() == first
    assert m.shard_summary() == m.shard_summary()
