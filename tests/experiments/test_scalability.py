"""Tests for the section-2 scalability-rationale experiments."""

from repro.experiments.scalability import (
    address_space_ablation,
    allocation_latency,
    directory_memory,
)


def test_directory_memory_svd_constant_table_linear():
    fig = directory_memory(node_counts=[2, 32, 512], objects=16)
    rows = fig.rows()
    # SVD footprint is machine-size independent.
    assert len({r["svd_bytes"] for r in rows}) == 1
    # The full table grows linearly with nodes.
    assert rows[1]["full_table_bytes"] == 16 * rows[0]["full_table_bytes"]
    # The cache is bounded by its capacity.
    assert rows[-1]["addr_cache_bytes"] <= 100 * 64
    assert rows[-1]["table_vs_svd"] == 512.0


def test_address_space_ablation_shows_blowup():
    fig = address_space_ablation(nodes=8, threads_per_node=2,
                                 allocs_per_thread=20)
    by_model = {r["model"]: r for r in fig.rows()}
    svd = by_model["svd"]
    ident = by_model["identical-addresses"]
    # Identical addresses consume roughly nodes x the per-node space
    # ("it tends to fragment the address space", section 2.1).
    assert ident["touched_mb"] > 4 * svd["touched_mb"]
    assert ident["blowup_vs_svd"] >= 4.0
    assert 0 <= svd["fragmentation"] <= 1
    assert 0 <= ident["fragmentation"] <= 1


def test_address_space_ablation_deterministic():
    a = address_space_ablation(nodes=4, allocs_per_thread=10, seed=3)
    b = address_space_ablation(nodes=4, allocs_per_thread=10, seed=3)
    assert a.rows() == b.rows()


def test_allocation_latency_sublinear():
    fig = allocation_latency(node_counts=[2, 8, 32])
    rows = fig.rows()
    t2, t32 = rows[0]["alloc_us"], rows[-1]["alloc_us"]
    # 16x more nodes must cost far less than 16x the latency
    # (log-tree collective).
    assert t32 < 6 * t2
    # Per-node cost must *drop* with scale.
    assert rows[-1]["per_node_ns"] < rows[0]["per_node_ns"]
