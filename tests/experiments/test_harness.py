"""Tests for the paired-run harness and statistics."""

import math
from dataclasses import dataclass

import pytest

from repro.experiments import paired_run, repeat_ci
from repro.network import GM_MARENOSTRUM
from repro.util.stats import (
    ConfidenceInterval,
    DegenerateBaselineError,
    RunningStats,
    improvement_pct,
    mean_ci95,
)
from repro.workloads import PointerParams, run_pointer


def small_params(**kw):
    return PointerParams(machine=GM_MARENOSTRUM, nthreads=8,
                         threads_per_node=4, nelems=1024, hops=8, **kw)


def test_paired_run_checks_equivalence_and_improves():
    pair = paired_run(run_pointer, small_params(seed=3))
    assert pair.baseline.check == pair.cached.check
    assert pair.improvement_pct > 0
    assert 0 <= pair.hit_rate <= 1


def test_repeat_ci_aggregates_seeds():
    ci = repeat_ci(run_pointer, small_params(), seeds=[1, 2, 3])
    assert ci.n == 3
    assert ci.low <= ci.mean <= ci.high


def test_repeat_ci_requires_seeds():
    with pytest.raises(ValueError):
        repeat_ci(run_pointer, small_params(), seeds=[])


def test_improvement_pct_paper_formula():
    # 100 (Z - W) / Z
    assert improvement_pct(100.0, 60.0) == pytest.approx(40.0)
    assert improvement_pct(10.0, 30.0) == pytest.approx(-200.0)
    with pytest.raises(ValueError):
        improvement_pct(0.0, 1.0)


def test_mean_ci95_known_values():
    ci = mean_ci95([10.0, 12.0, 14.0])
    assert ci.mean == pytest.approx(12.0)
    assert ci.half_width == pytest.approx(1.96 * 2.0 / 3 ** 0.5, rel=1e-3)
    single = mean_ci95([5.0])
    assert single.half_width == 0.0
    with pytest.raises(ValueError):
        mean_ci95([])


def test_running_stats_mean_variance_merge():
    a, b = RunningStats(), RunningStats()
    a.extend([1.0, 2.0, 3.0])
    b.extend([10.0, 20.0])
    merged = RunningStats()
    merged.extend([1.0, 2.0, 3.0, 10.0, 20.0])
    a.merge(b)
    assert a.n == merged.n
    assert a.mean == pytest.approx(merged.mean)
    assert a.variance == pytest.approx(merged.variance)
    assert a.min == 1.0 and a.max == 20.0


def test_confidence_interval_bounds():
    ci = ConfidenceInterval(mean=10.0, half_width=2.0, n=5)
    assert ci.low == 8.0 and ci.high == 12.0


# ---------------------------------------------------------------------------
# Degenerate baselines: named error, per-seed skipping, honest rendering
# ---------------------------------------------------------------------------

def test_zero_baseline_raises_named_error_not_bare_valueerror():
    with pytest.raises(DegenerateBaselineError, match="undefined"):
        improvement_pct(0.0, 1.0)
    # Old callers that catch ValueError keep working.
    assert issubclass(DegenerateBaselineError, ValueError)


def test_confidence_interval_str_marks_degenerate_sample_counts():
    real = ConfidenceInterval(mean=16.6, half_width=1.2, n=3)
    assert "± 1.200 (n=3)" in str(real)
    # One seed has no spread to estimate — never render "± 0.00".
    single = ConfidenceInterval(mean=16.6, half_width=0.0, n=1)
    assert "(n=1, no CI)" in str(single)
    assert "±" not in str(single)
    empty = ConfidenceInterval(mean=float("nan"), half_width=0.0,
                               n=0, skipped=4)
    assert str(empty) == "no data (n=0, skipped=4)"


@dataclass(frozen=True)
class _StubParams:
    seed: int = 0
    cache_enabled: bool = False
    degenerate_seeds: tuple = ()


@dataclass(frozen=True)
class _StubResult:
    elapsed_us: float
    check: int = 42
    hit_rate: float = 0.5


def _stub_run(params: _StubParams) -> _StubResult:
    if params.seed in params.degenerate_seeds:
        return _StubResult(elapsed_us=0.0)
    # Uncached run takes 100us, cached 80us: 20% improvement.
    return _StubResult(elapsed_us=80.0 if params.cache_enabled
                       else 100.0)


def test_repeat_ci_skips_degenerate_seeds_instead_of_aborting():
    params = _StubParams(degenerate_seeds=(2,))
    ci = repeat_ci(_stub_run, params, seeds=[1, 2, 3])
    assert ci.n == 2
    assert ci.skipped == 1
    assert ci.mean == pytest.approx(20.0)


def test_repeat_ci_all_degenerate_returns_empty_interval():
    params = _StubParams(degenerate_seeds=(1, 2))
    ci = repeat_ci(_stub_run, params, seeds=[1, 2])
    assert ci.n == 0
    assert ci.skipped == 2
    assert math.isnan(ci.mean)
    assert "no data" in str(ci)
