"""Tests for the paired-run harness and statistics."""

import pytest

from repro.experiments import paired_run, repeat_ci
from repro.network import GM_MARENOSTRUM
from repro.util.stats import (
    ConfidenceInterval,
    RunningStats,
    improvement_pct,
    mean_ci95,
)
from repro.workloads import PointerParams, run_pointer


def small_params(**kw):
    return PointerParams(machine=GM_MARENOSTRUM, nthreads=8,
                         threads_per_node=4, nelems=1024, hops=8, **kw)


def test_paired_run_checks_equivalence_and_improves():
    pair = paired_run(run_pointer, small_params(seed=3))
    assert pair.baseline.check == pair.cached.check
    assert pair.improvement_pct > 0
    assert 0 <= pair.hit_rate <= 1


def test_repeat_ci_aggregates_seeds():
    ci = repeat_ci(run_pointer, small_params(), seeds=[1, 2, 3])
    assert ci.n == 3
    assert ci.low <= ci.mean <= ci.high


def test_repeat_ci_requires_seeds():
    with pytest.raises(ValueError):
        repeat_ci(run_pointer, small_params(), seeds=[])


def test_improvement_pct_paper_formula():
    # 100 (Z - W) / Z
    assert improvement_pct(100.0, 60.0) == pytest.approx(40.0)
    assert improvement_pct(10.0, 30.0) == pytest.approx(-200.0)
    with pytest.raises(ValueError):
        improvement_pct(0.0, 1.0)


def test_mean_ci95_known_values():
    ci = mean_ci95([10.0, 12.0, 14.0])
    assert ci.mean == pytest.approx(12.0)
    assert ci.half_width == pytest.approx(1.96 * 2.0 / 3 ** 0.5, rel=1e-3)
    single = mean_ci95([5.0])
    assert single.half_width == 0.0
    with pytest.raises(ValueError):
        mean_ci95([])


def test_running_stats_mean_variance_merge():
    a, b = RunningStats(), RunningStats()
    a.extend([1.0, 2.0, 3.0])
    b.extend([10.0, 20.0])
    merged = RunningStats()
    merged.extend([1.0, 2.0, 3.0, 10.0, 20.0])
    a.merge(b)
    assert a.n == merged.n
    assert a.mean == pytest.approx(merged.mean)
    assert a.variance == pytest.approx(merged.variance)
    assert a.min == 1.0 and a.max == 20.0


def test_confidence_interval_bounds():
    ci = ConfidenceInterval(mean=10.0, half_width=2.0, n=5)
    assert ci.low == 8.0 and ci.high == 12.0
