"""Tests for the figure runners (small-scale smoke versions; the
shape assertions live in tests/test_calibration.py)."""

import pytest

from repro.experiments import (
    FigureResult,
    fig6_get,
    fig6_put,
    fig7,
    fig8,
    fig9,
    miss_overhead,
    render_table,
)


def test_figure_result_rows_and_series():
    fig = FigureResult(figure_id="X", title="t", columns=["a", "b"])
    fig.add(a=1, b=2.5)
    fig.add(a=3, b=None)
    assert fig.series("a") == [1, 3]
    assert fig.rows()[1]["b"] is None
    text = fig.render()
    assert "X: t" in text
    assert "2.50" in text


def test_render_table_alignment_and_empty():
    assert "(no data)" in render_table([], ["x"], title="T")
    text = render_table([{"x": 1000, "y": 1.234}], ["x", "y"])
    assert "1000" in text and "1.23" in text


def test_render_table_degenerate_values():
    from repro.util.stats import ConfidenceInterval

    rows = [{"x": None, "y": float("nan"),
             "z": ConfidenceInterval(mean=5.0, half_width=0.0, n=1)}]
    text = render_table(rows, ["x", "y", "z"])
    # Degenerate cells render as "-", and a single-seed interval is
    # marked honestly rather than shown as "± 0.00".
    cells = text.splitlines()[-1].split()
    assert cells[0] == "-" and cells[1] == "-"
    assert "(n=1, no CI)" in text
    assert "±" not in text


def test_fig6_get_columns_and_rows():
    fig = fig6_get(sizes=[1, 1024], reps=3)
    assert fig.columns == ["size_bytes", "gm_pct", "lapi_pct"]
    assert [r["size_bytes"] for r in fig.rows()] == [1, 1024]


def test_fig6_put_has_lapi_regression_row():
    fig = fig6_put(sizes=[16], reps=3)
    assert fig.rows()[0]["lapi_pct"] < -50


def test_fig7_reports_four_series():
    fig = fig7(sizes=[1, 64], reps=3)
    row = fig.rows()[0]
    for col in ("gm_nocache_us", "gm_cache_us", "lapi_nocache_us",
                "lapi_cache_us"):
        assert row[col] > 0


def test_fig8_rejects_unknown_workload():
    with pytest.raises(ValueError):
        fig8("matrix-multiply")


def test_fig8_row_structure():
    fig = fig8("neighborhood", scales=[(8, 2)], capacities=(4, 100),
               seed=1)
    row = fig.rows()[0]
    assert row["threads"] == 8 and row["nodes"] == 2
    assert 0 <= row["hit_cap4"] <= 1
    assert 0 <= row["hit_cap100"] <= 1


def test_fig9_rejects_unknown_platform():
    with pytest.raises(ValueError):
        fig9("infiniband")


def test_fig9_rows_include_cis():
    fig = fig9("gm", scales=[(8, 2)], seeds=(1, 2))
    row = fig.rows()[0]
    for name in ("pointer", "update", "neighborhood", "field"):
        assert name in row
        assert f"{name}_ci" in row


def test_miss_overhead_small():
    fig = miss_overhead(threads=8, nodes=2, seeds=(1,))
    assert len(fig.rows()) == 1
    assert fig.rows()[0]["overhead_pct"] < 5.0
