"""Tests for the section 4.5 capacity/speedup compromise."""

from repro.experiments.capacity import capacity_speedup


def test_capacity_curve_saturates_at_working_set():
    fig = capacity_speedup(threads=32, nodes=8,
                           capacities=[0, 2, 8, 100], seed=1)
    rows = {r["capacity"]: r for r in fig.rows()}
    # Capacity 0: all misses, improvement ~0 (just miss overhead).
    assert rows[0]["hit_rate"] == 0.0
    assert abs(rows[0]["improvement_pct"]) < 5.0
    # Improvement grows with capacity...
    assert rows[2]["improvement_pct"] < rows[100]["improvement_pct"]
    # ...and saturates once the 7-entry working set fits.
    assert rows[8]["improvement_pct"] > 0.85 * rows[100]["improvement_pct"]
    assert rows[8]["hit_rate"] > 0.85


def test_capacity_rows_monotone_hit_rate():
    fig = capacity_speedup(threads=32, nodes=8,
                           capacities=[2, 4, 8, 16], seed=2)
    hits = fig.series("hit_rate")
    assert all(a <= b + 0.02 for a, b in zip(hits, hits[1:]))
