"""Unit tests for the event primitives."""

import pytest

from repro.sim import Simulator, SimulationError
from repro.sim.event import AllOf, AnyOf


def test_event_starts_pending():
    sim = Simulator()
    ev = sim.event("e")
    assert not ev.triggered
    assert not ev.processed


def test_succeed_carries_value():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(42)
    sim.run()
    assert ev.processed
    assert ev.ok
    assert ev.value == 42


def test_succeed_with_delay_fires_at_right_time():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("x", delay=7.5)
    seen = []
    ev.add_callback(lambda e: seen.append(sim.now))
    sim.run()
    assert seen == [7.5]


def test_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(ValueError("nope"))


def test_fail_requires_exception_instance():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_failed_event_value_raises():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("boom"))
    sim.run()
    assert not ev.ok
    with pytest.raises(ValueError):
        _ = ev.value


def test_callback_after_processed_runs_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(5)
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == [5]


def test_timeout_fires_after_delay():
    sim = Simulator()
    t = sim.timeout(3.0, value="v")
    sim.run()
    assert sim.now == 3.0
    assert t.value == "v"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_allof_waits_for_every_child():
    sim = Simulator()
    a, b, c = sim.timeout(1), sim.timeout(5), sim.timeout(3)
    combo = AllOf(sim, [a, b, c])
    fired_at = []
    combo.add_callback(lambda e: fired_at.append(sim.now))
    sim.run()
    assert fired_at == [5.0]
    assert combo.value == [None, None, None]


def test_allof_empty_succeeds_immediately():
    sim = Simulator()
    combo = AllOf(sim, [])
    assert combo.triggered


def test_allof_propagates_failure():
    sim = Simulator()
    good = sim.timeout(1)
    bad = sim.event()
    bad.fail(RuntimeError("child"), delay=0.5)
    combo = AllOf(sim, [good, bad])
    sim.run()
    assert not combo.ok
    assert isinstance(combo.exception, RuntimeError)


def test_anyof_returns_first_winner():
    sim = Simulator()
    slow = sim.timeout(9, value="slow")
    fast = sim.timeout(2, value="fast")
    combo = AnyOf(sim, [slow, fast])
    sim.run()
    assert combo.value == (1, "fast")


def test_events_at_same_time_process_in_schedule_order():
    sim = Simulator()
    order = []
    for i in range(10):
        ev = sim.timeout(1.0, value=i)
        ev.add_callback(lambda e: order.append(e.value))
    sim.run()
    assert order == list(range(10))
