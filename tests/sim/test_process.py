"""Unit tests for generator processes."""

import pytest

from repro.sim import Simulator, SimulationError, ProcessKilled


def test_process_returns_value():
    sim = Simulator()

    def worker():
        yield sim.timeout(2)
        return 99

    assert sim.run_process(worker()) == 99
    assert sim.now == 2.0


def test_process_receives_event_value():
    sim = Simulator()

    def worker():
        got = yield sim.timeout(1, value="payload")
        return got

    assert sim.run_process(worker()) == "payload"


def test_processes_interleave_in_time():
    sim = Simulator()
    log = []

    def worker(name, delay):
        yield sim.timeout(delay)
        log.append((sim.now, name))
        yield sim.timeout(delay)
        log.append((sim.now, name))

    sim.process(worker("a", 1))
    sim.process(worker("b", 3))
    sim.run()
    assert log == [(1.0, "a"), (2.0, "a"), (3.0, "b"), (6.0, "b")]


def test_fork_join_by_yielding_child_process():
    sim = Simulator()

    def child(n):
        yield sim.timeout(n)
        return n * 10

    def parent():
        kids = [sim.process(child(n)) for n in (1, 2, 3)]
        results = []
        for k in kids:
            results.append((yield k))
        return results

    assert sim.run_process(parent()) == [10, 20, 30]
    assert sim.now == 3.0


def test_subgenerator_with_yield_from():
    sim = Simulator()

    def inner():
        yield sim.timeout(4)
        return "inner-done"

    def outer():
        r = yield from inner()
        return r

    assert sim.run_process(outer()) == "inner-done"


def test_exception_in_process_surfaces_via_value():
    sim = Simulator()

    def worker():
        yield sim.timeout(1)
        raise KeyError("oops")

    proc = sim.process(worker())
    sim.run()
    assert not proc.ok
    with pytest.raises(KeyError):
        _ = proc.value


def test_failed_event_is_thrown_into_process():
    sim = Simulator()
    bad = sim.event()
    bad.fail(ValueError("net down"), delay=1)

    def worker():
        try:
            yield bad
        except ValueError:
            return "recovered"
        return "not reached"

    assert sim.run_process(worker()) == "recovered"


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def worker():
        yield 42  # not an Event

    proc = sim.process(worker())
    with pytest.raises(SimulationError):
        sim.run()
    assert proc.is_alive  # never completed


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_kill_interrupts_process():
    sim = Simulator()

    def worker():
        yield sim.timeout(100)
        return "finished"

    proc = sim.process(worker())
    sim.run(until=5)
    proc.kill("test")
    sim.run()
    assert proc.triggered
    assert isinstance(proc.exception, ProcessKilled)


def test_kill_then_stale_wakeup_is_ignored():
    sim = Simulator()

    def worker():
        yield sim.timeout(10)

    proc = sim.process(worker())
    sim.run(until=1)
    proc.kill()
    # The pending timeout still fires at t=10; must not crash.
    sim.run()
    assert isinstance(proc.exception, ProcessKilled)


def test_run_process_detects_deadlock():
    sim = Simulator()

    def worker():
        yield sim.event()  # never triggered

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(worker())


def test_run_until_advances_clock_without_events():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_max_events_guard():
    sim = Simulator()

    def looper():
        while True:
            yield sim.timeout(1)

    sim.process(looper())
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=50)
