"""Dual-core simulator tests: the pooled fast core against the legacy
reference core, plus the max_events exhaustion-report regression."""

import pytest

from repro.sim import Simulator
from repro.sim.errors import SimulationError
from repro.sim.event import Event, Timeout, _PooledEvent


BOTH_CORES = pytest.mark.parametrize("pooled", [True, False],
                                     ids=["pooled", "legacy"])


# ---------------------------------------------------------------------------
# max_events exhaustion must report the *pending* event's time
# ---------------------------------------------------------------------------

@BOTH_CORES
def test_max_events_reports_pending_event_time(pooled):
    sim = Simulator(pooled=pooled)
    for t in (5.0, 10.0, 15.0):
        sim.timeout(t)
    with pytest.raises(SimulationError) as exc:
        sim.run(max_events=2)
    msg = str(exc.value)
    # Two events were processed; the third (t=15) is the one that the
    # budget refused — the report must carry *its* time, not the
    # previous step's clock.
    assert "2 events processed" in msg
    assert "t=15.000" in msg
    assert sim.now == 10.0


@BOTH_CORES
def test_max_events_budget_exactly_sufficient(pooled):
    sim = Simulator(pooled=pooled)
    for t in (1.0, 2.0):
        sim.timeout(t)
    sim.run(max_events=2)          # no error: the budget covers it
    assert sim.events_processed == 2
    assert sim.now == 2.0


# ---------------------------------------------------------------------------
# Bit-identical schedules across the two cores
# ---------------------------------------------------------------------------

def _mixed_workload(sim, trace):
    """Ties, zero delays, resource-style wakeups — the order-sensitive
    shapes the fast lane and the entry pool must not reorder."""

    def worker(tag, delays):
        for i, d in enumerate(delays):
            yield sim.sleep(d)
            trace.append((sim.now, tag, i))

    sim.process(worker("a", [1.0, 0.0, 0.0, 2.0, 0.0]))
    sim.process(worker("b", [1.0, 0.0, 1.0, 1.0]))
    sim.process(worker("c", [0.0, 1.0, 0.0, 3.0]))
    sim.process(worker("d", [2.0, 0.0, 0.0, 0.0, 0.0]))


def test_pooled_and_legacy_schedules_identical():
    traces = []
    for pooled in (True, False):
        sim = Simulator(pooled=pooled)
        trace = []
        _mixed_workload(sim, trace)
        sim.run()
        traces.append((trace, sim.events_processed, sim.now))
    assert traces[0] == traces[1]


def test_lane_does_not_preempt_same_time_heap_entry():
    """A zero-delay event scheduled *while processing* t=5 must run
    after heap entries already queued for t=5 with smaller seq."""
    for pooled in (True, False):
        sim = Simulator(pooled=pooled)
        order = []
        a = sim.timeout(5.0)                       # seq 1, heap
        b = sim.timeout(5.0)                       # seq 2, heap

        def on_a(ev):
            order.append("a")
            c = sim.timeout(0.0)                   # lane in pooled mode
            c.add_callback(lambda _: order.append("c"))

        a.add_callback(on_a)
        b.add_callback(lambda _: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"], f"pooled={pooled}: {order}"


# ---------------------------------------------------------------------------
# Pooling mechanics
# ---------------------------------------------------------------------------

def test_sleep_events_are_recycled():
    sim = Simulator(pooled=True)
    ev1 = sim.sleep(1.0)
    assert type(ev1) is _PooledEvent
    sim.run()
    # The processed timer went back to the free list; the next sleep
    # must reuse the same object instead of allocating.
    ev2 = sim.sleep(1.0)
    assert ev2 is ev1


def test_public_factories_never_pool():
    sim = Simulator(pooled=True)
    to = sim.timeout(1.0, value=42)
    ev = sim.event("keep-me")
    assert type(to) is Timeout
    assert type(ev) is Event
    sim.run()
    # Safe to read after the run — public events are never recycled.
    assert to.value == 42
    assert not ev.triggered


def test_legacy_mode_never_pools():
    sim = Simulator(pooled=False)
    assert type(sim.sleep(1.0)) is Timeout
    assert type(sim.oneshot("x")) is Event
    sim.run()
    assert not sim._event_pool
    assert not sim._entry_pool


def test_pooled_event_sole_waiter_slot_then_overflow():
    """First subscriber lands in the _cb slot; extras overflow to the
    list; all run in subscription order."""
    sim = Simulator(pooled=True)
    got = []
    ev = sim.sleep(1.0, value="v")
    ev.add_callback(lambda e: got.append(("first", e._value)))
    ev.add_callback(lambda e: got.append(("second", e._value)))
    sim.run()
    assert got == [("first", "v"), ("second", "v")]


# ---------------------------------------------------------------------------
# peek / pending with the fast lane
# ---------------------------------------------------------------------------

def test_peek_and_pending_see_the_lane():
    sim = Simulator(pooled=True)
    assert sim.pending == 0
    assert sim.peek() == float("inf")
    sim.timeout(3.0)
    assert sim.peek() == 3.0
    ev = sim.oneshot("grant")
    ev.succeed()                       # zero delay -> fast lane
    assert sim.pending == 2
    assert sim.peek() == 0.0           # the lane entry is at now
    sim.step()
    assert ev.processed
    assert sim.pending == 1
    assert sim.peek() == 3.0


@BOTH_CORES
def test_run_until_advances_clock(pooled):
    sim = Simulator(pooled=pooled)
    sim.timeout(2.0)
    sim.run(until=10.0)
    assert sim.now == 10.0
    assert sim.events_processed == 1
