"""Sharded-core determinism: the pooled single core is the referee.

Two workload families run under shards ∈ {1, 2, 4} and under both
backends (inproc / multiprocessing):

* the **Field mix** — the communication pattern of the paper's Field
  stressmark rewritten against shard boundaries (token puts + gather
  probes + closing barrier);
* the **fuzz-corpus skeleton** — every program in tests/fuzz/corpus
  replayed as a message-passing skeleton (same homing, same wire
  model, same collectives).

Every layout must produce byte-identical results: final memory images,
per-node digests, completion times, and the final virtual clock.  Raw
event *totals* legitimately differ across layouts (each extra shard
adds its own barrier-gate event per generation), so they are not
compared.  For a fixed layout, inproc and mp must agree exactly —
that's the transport-independence half of the contract."""

import glob
import os

import pytest

from repro.testing.generator import generate_program
from repro.testing.program import Program
from repro.workloads.sharded import (field_nnodes, run_corpus_sharded,
                                     run_field_reference,
                                     run_field_sharded)

pytestmark = pytest.mark.shard

CORPUS_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                          "fuzz", "corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def _load(path):
    with open(path, "r", encoding="utf-8") as fh:
        return Program.loads(fh.read())


def _assert_field_match(got, ref, label):
    assert got["trace"] == ref["trace"], f"{label}: trace differs"
    assert got["field"] == ref["field"], f"{label}: field state differs"
    assert got["digest"] == ref["digest"], f"{label}: digests differ"
    assert got["now"] == ref["now"], f"{label}: final clock differs"


def _assert_corpus_match(got, ref, label):
    assert got["mem"] == ref["mem"], f"{label}: final memory differs"
    assert got["digests"] == ref["digests"], f"{label}: digests differ"
    assert got["finish"] == ref["finish"], f"{label}: finish times differ"
    assert got["now"] == ref["now"], f"{label}: final clock differs"


# ---------------------------------------------------------------------------
# Field mix vs the independent pooled reference
# ---------------------------------------------------------------------------

FIELD_NT = 32  # 8 nodes -> shard counts 1/2/4 all divide evenly


@pytest.mark.parametrize("nshards", [1, 2, 4])
def test_field_layouts_match_pooled_reference(nshards):
    assert nshards <= field_nnodes(FIELD_NT)
    ref = run_field_reference(FIELD_NT, ntokens=3, probes=2)
    got = run_field_sharded(FIELD_NT, nshards, ntokens=3, probes=2,
                            mode="inproc")
    _assert_field_match(got, ref, f"shards={nshards}")
    # The referee actually exercised the workload.
    assert len(ref["trace"]) == FIELD_NT * (3 * 2 + 1)
    assert ref["now"] > 0


def test_field_mp_backend_matches_inproc():
    inproc = run_field_sharded(FIELD_NT, 2, ntokens=3, probes=2,
                               mode="inproc")
    mp = run_field_sharded(FIELD_NT, 2, ntokens=3, probes=2, mode="mp")
    _assert_field_match(mp, inproc, "mp vs inproc")
    # Same layout: even raw event totals must agree across backends.
    assert mp["events"] == inproc["events"]
    assert mp["run"].rounds == inproc["run"].rounds


# ---------------------------------------------------------------------------
# Fuzz-corpus skeleton across layouts
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "corpus", CORPUS, ids=[os.path.basename(p) for p in CORPUS])
def test_corpus_skeleton_layout_invariant(corpus):
    prog = _load(corpus)
    base = run_corpus_sharded(prog, 1)
    assert base["mem"], "corpus program left no live objects to check"
    for nshards in (2, 4):
        if nshards > prog.nthreads:
            continue
        got = run_corpus_sharded(prog, nshards, mode="inproc")
        _assert_corpus_match(got, base,
                             f"{os.path.basename(corpus)} shards={nshards}")


def test_corpus_skeleton_mp_backend_matches():
    prog = _load(CORPUS[0])
    inproc = run_corpus_sharded(prog, 2, mode="inproc")
    mp = run_corpus_sharded(prog, 2, mode="mp")
    _assert_corpus_match(mp, inproc, "mp vs inproc")
    assert mp["events"] == inproc["events"]


def test_fresh_fuzz_programs_layout_invariant():
    """Not just the frozen corpus: freshly generated programs must
    also be layout-invariant, so regressions in *new* op mixes are
    caught here rather than by the next fuzz campaign."""
    for seed in (101, 202):
        prog = generate_program(seed, n_ops=40, nthreads=4)
        base = run_corpus_sharded(prog, 1)
        for nshards in (2, 4):
            got = run_corpus_sharded(prog, nshards, mode="inproc")
            _assert_corpus_match(got, base,
                                 f"seed={seed} shards={nshards}")
