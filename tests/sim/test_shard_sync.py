"""Unit tests of the sharded-core building blocks: conservative sync
arithmetic, topology-derived lookahead, bounded drains, per-shard RNG
stream splitting, shard collectives, and the metrics rollups."""

import numpy as np
import pytest

from repro.network.params import MACHINES
from repro.network.partition import (lookahead_matrix, min_lookahead,
                                     partition_nodes)
from repro.runtime.collectives import ShardFence, dissemination_cost_us
from repro.runtime.metrics import RuntimeMetrics
from repro.sim.shard import (ShardContext, ShardedSimulator, ShardSpec)
from repro.sim.simulator import Simulator
from repro.sim.sync import (INF, BarrierPost, ShardMetrics, ShardReport,
                            SyncCoordinator, SyncDeadlock, SyncError,
                            normalize_lookahead)
from repro.util.rng import StreamFamily

pytestmark = pytest.mark.shard

GM = MACHINES["gm"]


# ---------------------------------------------------------------------------
# Lookahead normalization + partitioning
# ---------------------------------------------------------------------------

def test_normalize_lookahead_scalar_and_matrix():
    la = normalize_lookahead(2.5, 3)
    assert la == [[2.5] * 3] * 3
    same = normalize_lookahead(la, 3)
    assert same == la


def test_normalize_lookahead_rejects_bad_shapes_and_values():
    with pytest.raises(SyncError):
        normalize_lookahead([[1.0]], 2)
    with pytest.raises(SyncError):
        normalize_lookahead([[0.0, 0.0], [1.0, 0.0]], 2)  # off-diag 0


def test_partition_nodes_balanced_contiguous():
    part = partition_nodes(10, 4)
    assert part.sizes == (3, 3, 2, 2)
    covered = []
    for s in range(4):
        lo, hi = part.range_of(s)
        covered.extend(range(lo, hi))
        for n in range(lo, hi):
            assert part.shard_of(n) == s
    assert covered == list(range(10))


def test_lookahead_matrix_marenostrum_adjacent_groups():
    # 256 nodes / 4 shards on the Myrinet Clos: adjacent shards share
    # a group boundary (5 hops never needed); closest cross pair is
    # linecard-to-linecard inside a group -> 3 hops.
    part = partition_nodes(256, 4)
    la = lookahead_matrix(GM, 256, part)
    hop3 = GM.wire_base_us + 3 * GM.wire_per_hop_us
    assert la[0][1] == pytest.approx(hop3)
    assert la[1][0] == pytest.approx(hop3)
    assert la[0][0] == 0.0
    for row in la:
        for x in row[1:]:
            assert x == 0.0 or x >= hop3


def test_min_lookahead_single_shard_is_infinite():
    assert min_lookahead(GM, 64, 1) == INF
    assert min_lookahead(GM, 64, 2) > 0.0


# ---------------------------------------------------------------------------
# Coordinator horizon arithmetic
# ---------------------------------------------------------------------------

def _report(shard, next_time, sent=(), barriers=()):
    return ShardReport(shard=shard, next_time=next_time,
                       sent=list(sent), barriers=list(barriers))


def test_horizon_uses_peer_floor_plus_lookahead():
    coord = SyncCoordinator(2.0, 2)
    plans = coord.round([_report(0, 10.0), _report(1, 11.0)])
    assert plans[0].horizon == pytest.approx(13.0)  # 11 + 2
    assert plans[1].horizon == pytest.approx(12.0)  # 10 + 2


def test_horizon_bounds_drained_peer_by_wakeup_chain():
    # Shard 1 is drained (inf queue) but shard 0 can wake it: shard
    # 1's floor relaxes to eff0 + L, and shard 0's own horizon must
    # stay below the earliest possible *reply* (round trip), not inf.
    coord = SyncCoordinator(2.0, 2)
    plans = coord.round([_report(0, 10.0), _report(1, INF)])
    assert plans[1].horizon == pytest.approx(12.0)   # 10 + 2
    assert plans[0].horizon == pytest.approx(14.0)   # (10 + 2) + 2


def test_all_drained_terminates():
    coord = SyncCoordinator(2.0, 2)
    plans = coord.round([_report(0, INF), _report(1, INF)])
    assert all(p.done for p in plans)


def test_collective_release_at_max_arrival_plus_cost():
    coord = SyncCoordinator(2.0, 2)
    post0 = BarrierPost(name="b@0", count=1, t_last=5.0, expected=2,
                        cost=1.5)
    post1 = BarrierPost(name="b@0", count=1, t_last=9.0, expected=2,
                        cost=1.5)
    plans = coord.round([_report(0, INF, barriers=[post0]),
                         _report(1, 9.0, barriers=[post1])])
    assert plans[0].releases == [("b@0", 10.5)]
    assert plans[1].releases == [("b@0", 10.5)]
    # The release also floors every shard's effective time.
    assert plans[0].horizon <= 10.5 + 2.0


def test_deadlock_detection_names_the_stuck_collective():
    coord = SyncCoordinator(2.0, 2)
    post = BarrierPost(name="lost@3", count=1, t_last=4.0, expected=2,
                       cost=1.0)
    coord.round([_report(0, 5.0, barriers=[post]), _report(1, 5.0)])
    with pytest.raises(SyncDeadlock, match="lost@3"):
        coord.round([_report(0, INF), _report(1, INF)])


def test_barrier_overcount_rejected():
    coord = SyncCoordinator(2.0, 2)
    post = BarrierPost(name="b", count=3, t_last=1.0, expected=2,
                       cost=0.0)
    with pytest.raises(SyncError, match="arrivals"):
        coord.round([_report(0, 1.0, barriers=[post]), _report(1, 1.0)])


# ---------------------------------------------------------------------------
# run_before: the bounded drain both cores implement
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("pooled", [True, False])
def test_run_before_strict_bound(pooled):
    sim = Simulator(pooled=pooled)
    seen = []
    for t in (1.0, 2.0, 3.0, 4.0):
        sim.sleep(t).add_callback(
            lambda ev, t=t: seen.append((t, sim.now)))
    n = sim.run_before(3.0)
    assert n == 2
    assert [t for t, _ in seen] == [1.0, 2.0]
    assert sim.now == 2.0          # clock rests on the last event
    assert sim.run_before(3.0) == 0
    assert sim.run_before(INF) == 2
    assert [t for t, _ in seen] == [1.0, 2.0, 3.0, 4.0]


# ---------------------------------------------------------------------------
# ShardContext send validation + Simulator(shards=N) dispatch
# ---------------------------------------------------------------------------

def _ctx(nshards=2, la=2.0):
    matrix = tuple(tuple(0.0 if i == j else la for j in range(nshards))
                   for i in range(nshards))
    return ShardContext(ShardSpec(shard_id=0, nshards=nshards,
                                  lookahead=matrix))


def test_send_below_lookahead_rejected():
    ctx = _ctx()
    with pytest.raises(SyncError, match="below lookahead"):
        ctx.send(1, "msg", latency=1.0)
    ctx.send(1, "msg", latency=2.0)      # exactly the bound is fine
    assert len(ctx._take_outbox()) == 1


def test_same_shard_send_takes_delivery_path():
    ctx = _ctx()
    got = []
    ctx.on_message("echo", got.append)
    ctx.send(0, "echo", "hi", latency=0.5)   # below lookahead is fine
    ctx.sim.run()
    assert got == ["hi"]
    assert ctx._take_outbox() == []


def test_simulator_shards_dispatch():
    sharded = Simulator(shards=4, lookahead=2.0, mode="inproc")
    assert isinstance(sharded, ShardedSimulator)
    assert sharded.nshards == 4
    assert isinstance(Simulator(pooled=True), Simulator)
    with pytest.raises(ValueError):
        ShardedSimulator(2, mode="bogus")


# ---------------------------------------------------------------------------
# Shard collectives
# ---------------------------------------------------------------------------

def test_dissemination_cost_shared_formula():
    t = GM.transport
    assert dissemination_cost_us(GM, 1, t) == 0.5
    c256 = dissemination_cost_us(GM, 256, t)
    assert c256 == pytest.approx(
        2 * 8 * (GM.wire_base_us + 3 * GM.wire_per_hop_us
                 + t.o_send_us + t.o_recv_us))
    bgl = MACHINES["bgl"]
    assert dissemination_cost_us(bgl, 4096, bgl.transport) == \
        bgl.collective_network_barrier_us


class _FenceHost:
    def __init__(self, sim):
        self.sim = sim


def test_shard_fence_drains_acks():
    sim = Simulator(pooled=True)
    fence = ShardFence(_FenceHost(sim))
    done = []

    def writer():
        t1 = fence.issue()
        t2 = fence.issue()
        sim.sleep(1.0).add_callback(lambda ev: fence.ack(t1))
        sim.sleep(5.0).add_callback(lambda ev: fence.ack(t2))
        yield from fence.wait()
        done.append(sim.now)

    sim.process(writer())
    sim.run()
    assert done == [5.0]
    assert fence.outstanding == 0
    assert fence.completed == 2
    with pytest.raises(RuntimeError, match="unknown or duplicate"):
        fence.ack(99)


# ---------------------------------------------------------------------------
# RNG stream splitting
# ---------------------------------------------------------------------------

def test_stream_family_is_shard_independent():
    fam = StreamFamily(42, "fault-plan")
    a = fam.rng(7).integers(0, 1 << 30, 8)
    b = fam.rng(7).integers(0, 1 << 30, 8)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, fam.rng(8).integers(0, 1 << 30, 8))
    # Nested scopes decorrelate but stay deterministic.
    child = fam.child("arrivals")
    assert child.seed_for(7) == StreamFamily(
        42, "fault-plan", "arrivals").seed_for(7)
    assert child.seed_for(7) != fam.seed_for(7)


def test_stream_family_key_rules():
    fam = StreamFamily(1, "x")
    assert fam.seed_for("node", 3) == fam.seed_for("node", 3)
    with pytest.raises(TypeError):
        fam.rng(True)
    with pytest.raises(TypeError):
        StreamFamily(1, 3.5)


# ---------------------------------------------------------------------------
# Metrics rollups
# ---------------------------------------------------------------------------

def test_shard_metrics_rollup_in_summary():
    m = RuntimeMetrics()
    m.max_backlog = 3
    shards = [
        ShardMetrics(shard=0, events=100, grains=10, stall_grains=2,
                     msgs_sent=5, channel_bytes=400, max_backlog=7,
                     final_clock_us=50.0),
        ShardMetrics(shard=1, events=300, grains=12, stall_grains=1,
                     msgs_sent=9, channel_bytes=600, max_backlog=4,
                     final_clock_us=52.0),
    ]
    m.attach_shards(shards)
    s = m.summary()
    assert s["shards"] == 2
    assert s["shard_events_total"] == 400
    assert s["shard_events_mean"] == pytest.approx(200.0)
    assert s["shard_events_max"] == 300
    assert s["sync_rounds"] == 12
    assert s["sync_stall_grains"] == 3
    assert s["channel_bytes"] == 1000
    assert s["channel_msgs"] == 14
    assert s["shard_max_backlog"] == 7
    assert s["shard_final_clock_us"] == 52.0
    assert s["max_backlog"] == 7        # folded into the base field
    # Pooled runs keep the base summary untouched.
    assert "shards" not in RuntimeMetrics().summary()
