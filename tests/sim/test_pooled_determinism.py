"""The pooled fast core must be bit-identical to the legacy core on
the PR 2 fuzz corpus: same final memory, same event order, and — with
the flight recorder on — byte-identical JSONL output.

These are full-runtime replays (network, cache, bulk engine, progress
engines all live), so any divergence means the event-core overhaul
changed an observable schedule, not just a micro-detail."""

import glob
import os
from dataclasses import replace

import numpy as np
import pytest

from repro.obs.events import EventLog
from repro.obs.export import dump_jsonl
from repro.runtime.runtime import Runtime
from repro.sim.simulator import Simulator
from repro.testing.oracle import run_oracle
from repro.testing.program import Program, live_objects_at_end
from repro.testing.runner import _Driver, config_by_name, run_config

CORPUS_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                          "fuzz", "corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def _load(path):
    with open(path, "r", encoding="utf-8") as fh:
        return Program.loads(fh.read())


def _replay(program, point, pooled, jsonl_path):
    events = EventLog()
    cfg = replace(point.runtime_config(program.nthreads,
                                       seed=program.seed or 0),
                  events=events)
    rt = Runtime(cfg, sim=Simulator(pooled=pooled))
    driver = _Driver(rt, program)
    rt.spawn(driver.kernel)
    rt.run()
    dump_jsonl(events, jsonl_path)
    finals = {obj_id: np.array(driver.objs[obj_id].data, copy=True)
              for obj_id in live_objects_at_end(program)
              if obj_id in driver.objs}
    with open(jsonl_path, "rb") as fh:
        blob = fh.read()
    return blob, finals, rt.sim.events_processed, rt.sim.now


@pytest.mark.parametrize(
    "corpus", CORPUS, ids=[os.path.basename(p) for p in CORPUS])
def test_cores_byte_identical_on_fuzz_corpus(corpus, tmp_path):
    program = _load(corpus)
    point = config_by_name("gm-base")
    blob_p, finals_p, events_p, now_p = _replay(
        program, point, True, str(tmp_path / "pooled.jsonl"))
    blob_l, finals_l, events_l, now_l = _replay(
        program, point, False, str(tmp_path / "legacy.jsonl"))
    assert events_p == events_l
    assert now_p == now_l
    assert set(finals_p) == set(finals_l)
    for obj_id in finals_p:
        assert np.array_equal(finals_p[obj_id], finals_l[obj_id]), (
            f"object {obj_id} final memory differs between cores")
    assert blob_p == blob_l, (
        "flight-recorder JSONL differs between pooled and legacy cores")
    assert len(blob_p) > 0


def test_pooled_core_agrees_with_flat_oracle():
    """The PR 2 oracle referees the pooled core directly: replaying a
    corpus program on the (default, pooled) runtime must produce zero
    divergences from flat memory."""
    program = _load(CORPUS[0])
    point = config_by_name("gm-base")
    divergences = run_config(program, point, run_oracle(program))
    assert divergences == []
