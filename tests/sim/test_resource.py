"""Unit tests for Resource and Queue."""

import pytest

from repro.sim import Simulator, Resource, Queue, SimulationError


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    assert res.try_acquire()
    assert res.try_acquire()
    assert not res.try_acquire()
    assert res.in_use == 2


def test_release_grants_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(name, hold):
        yield res.acquire()
        order.append((sim.now, name))
        yield sim.timeout(hold)
        res.release()

    sim.process(user("a", 5))
    sim.process(user("b", 5))
    sim.process(user("c", 5))
    sim.run()
    assert order == [(0.0, "a"), (5.0, "b"), (10.0, "c")]


def test_release_idle_resource_rejected():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_utilization_tracks_busy_time():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user():
        yield res.acquire()
        yield sim.timeout(4)
        res.release()
        yield sim.timeout(6)  # idle tail

    sim.run_process(user())
    assert res.utilization() == pytest.approx(0.4)


def test_wait_stats_record_queueing_delay():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user(hold):
        yield res.acquire()
        yield sim.timeout(hold)
        res.release()

    sim.process(user(3))
    sim.process(user(3))
    sim.run()
    # First waits 0, second waits 3.
    assert res.wait_stats.n == 2
    assert res.wait_stats.max == pytest.approx(3.0)
    assert res.acquisitions == 2


def test_queue_put_then_get():
    sim = Simulator()
    q = Queue(sim)
    q.put("x")
    ev = q.get()
    assert ev.triggered
    sim.run()
    assert ev.value == "x"


def test_queue_get_blocks_until_put():
    sim = Simulator()
    q = Queue(sim)
    got = []

    def consumer():
        item = yield q.get()
        got.append((sim.now, item))

    def producer():
        yield sim.timeout(8)
        q.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [(8.0, "late")]


def test_queue_fifo_across_getters():
    sim = Simulator()
    q = Queue(sim)
    got = []

    def consumer(tag):
        item = yield q.get()
        got.append((tag, item))

    sim.process(consumer("first"))
    sim.process(consumer("second"))
    sim.run()
    q.put(1)
    q.put(2)
    sim.run()
    assert got == [("first", 1), ("second", 2)]
