"""Stress and edge tests for the simulation kernel."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Simulator, Resource, SimulationError
from repro.sim.event import AllOf, AnyOf


def test_many_processes_complete_in_time_order():
    sim = Simulator()
    finished = []

    def worker(delay):
        yield sim.timeout(delay)
        finished.append(delay)

    delays = [((i * 7919) % 1000) / 10.0 for i in range(500)]
    for d in delays:
        sim.process(worker(d))
    sim.run()
    assert finished == sorted(delays)


def test_deep_yield_from_chain():
    sim = Simulator()

    def level(n):
        if n == 0:
            yield sim.timeout(1.0)
            return 0
        v = yield from level(n - 1)
        return v + 1

    assert sim.run_process(level(200)) == 200


def test_resource_fairness_under_contention():
    """FIFO grant order: requesters are served strictly in arrival
    order regardless of how long they hold the resource."""
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(tag, arrive, hold):
        yield sim.timeout(arrive)
        yield res.acquire()
        order.append(tag)
        yield sim.timeout(hold)
        res.release()

    # Arrivals 0..9; varying holds.
    for i in range(10):
        sim.process(user(i, arrive=float(i) * 0.001,
                         hold=float((i * 13) % 7) + 0.5))
    sim.run()
    assert order == list(range(10))


def test_capacity_n_resource_allows_n_concurrent():
    sim = Simulator()
    res = Resource(sim, capacity=3)
    concurrent = []
    peak = []

    def user():
        yield res.acquire()
        concurrent.append(1)
        peak.append(len(concurrent))
        yield sim.timeout(5.0)
        concurrent.pop()
        res.release()

    for _ in range(9):
        sim.process(user())
    sim.run()
    assert max(peak) == 3


def test_allof_with_many_children():
    sim = Simulator()
    events = [sim.timeout(float(i % 17)) for i in range(300)]
    combo = AllOf(sim, events)
    sim.run()
    assert combo.processed
    assert len(combo.value) == 300


def test_anyof_ignores_later_failures():
    sim = Simulator()
    fast = sim.timeout(1, value="winner")
    slow = sim.event()
    slow.fail(RuntimeError("late loser"), delay=5)
    combo = AnyOf(sim, [slow, fast])
    sim.run()
    assert combo.ok
    assert combo.value == (1, "winner")


def test_run_until_mid_queue_is_resumable():
    sim = Simulator()
    log = []

    def worker():
        for k in range(5):
            yield sim.timeout(10.0)
            log.append(sim.now)

    sim.process(worker())
    sim.run(until=25.0)
    assert log == [10.0, 20.0]
    assert sim.now == 25.0
    sim.run()
    assert log == [10.0, 20.0, 30.0, 40.0, 50.0]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e5,
                          allow_nan=False), min_size=1, max_size=60))
def test_property_clock_is_monotone(delays):
    sim = Simulator()
    seen = []
    for d in delays:
        ev = sim.timeout(d)
        ev.add_callback(lambda e: seen.append(sim.now))
    sim.run()
    assert seen == sorted(seen)
    assert sim.now == max(delays)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 5), st.integers(1, 30))
def test_property_resource_never_oversubscribed(capacity, nusers):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    level = {"now": 0, "peak": 0}

    def user(hold):
        yield res.acquire()
        level["now"] += 1
        level["peak"] = max(level["peak"], level["now"])
        yield sim.timeout(hold)
        level["now"] -= 1
        res.release()

    for i in range(nusers):
        sim.process(user(float((i % 4) + 1)))
    sim.run()
    assert level["peak"] <= capacity
    assert res.in_use == 0
