"""Shape calibration against the paper's published results.

Each test pins one qualitative claim from the evaluation section to a
tolerance band (DESIGN.md section 4).  Absolute testbed numbers are
not expected to match — our substrate is a simulator — but who wins,
by roughly what factor, and where the crossovers fall must hold.
"""

import pytest

from repro.network import GM_MARENOSTRUM, LAPI_POWER5
from repro.util.stats import improvement_pct
from repro.workloads.micro import (
    MicroParams,
    get_roundtrip_us,
    put_overhead_us,
)

REPS = 8


def micro_improvement(fn, machine, size):
    z = fn(MicroParams(machine=machine, msg_bytes=size,
                       cache_enabled=False, reps=REPS))
    w = fn(MicroParams(machine=machine, msg_bytes=size,
                       cache_enabled=True, reps=REPS))
    return improvement_pct(z, w)


# ---------------------------------------------------------------- Figure 6

def test_fig6_get_small_gm_band():
    # "the gains in GET roundtrip latency ... are in 30% ... range for GM"
    imp = micro_improvement(get_roundtrip_us, GM_MARENOSTRUM, 16)
    assert 25.0 <= imp <= 40.0


def test_fig6_get_small_lapi_band():
    # "... and 16% range ... for LAPI"
    imp = micro_improvement(get_roundtrip_us, LAPI_POWER5, 16)
    assert 10.0 <= imp <= 24.0


def test_fig6_get_medium_peak():
    # "For medium message size range messages (1 KByte to 16 KByte)
    # there are even larger gains (around 40%)".
    for machine in (GM_MARENOSTRUM, LAPI_POWER5):
        small = micro_improvement(get_roundtrip_us, machine, 16)
        medium = max(micro_improvement(get_roundtrip_us, machine, s)
                     for s in (4096, 16384, 65536))
        assert medium > small
        assert medium >= 28.0


def test_fig6_get_gain_vanishes_for_huge_messages():
    # "differences ... diminish as message size increases and
    # communication becomes bandwidth dominated".
    for machine in (GM_MARENOSTRUM, LAPI_POWER5):
        imp = micro_improvement(get_roundtrip_us, machine, 4 * 1024 * 1024)
        assert abs(imp) < 5.0


def test_fig6_get_lapi_gain_persists_longer_than_gm():
    # "The gain is more visible on LAPI, fadding out at 2 MByte, than
    # on Myrinet because the rated bandwidth of the HPS switch is 8x".
    gm = micro_improvement(get_roundtrip_us, GM_MARENOSTRUM, 262144)
    lapi = micro_improvement(get_roundtrip_us, LAPI_POWER5, 262144)
    assert lapi > gm + 15.0


def test_fig6_put_gm_small_no_benefit():
    # "in GM we do not see any benefit of using the address cache for
    # small message transfers, up to 2 KBytes".
    for size in (16, 256, 2048):
        imp = micro_improvement(put_overhead_us, GM_MARENOSTRUM, size)
        assert abs(imp) < 15.0


def test_fig6_put_lapi_regression_up_to_200pct():
    # "a net decrease in performance of up to 200% by using the
    # address cache" (the reason RDMA PUT got disabled on LAPI).
    imp = micro_improvement(put_overhead_us, LAPI_POWER5, 16)
    assert -300.0 <= imp <= -120.0


def test_fig6_put_lapi_crossover_positive_for_large():
    imp = micro_improvement(put_overhead_us, LAPI_POWER5, 262144)
    assert imp > 10.0


# ---------------------------------------------------------------- Figure 7

def test_fig7_absolute_latencies_in_paper_range():
    # GM ~19-20us uncached / ~13us cached at tiny sizes; LAPI ~10-12 /
    # ~9-10 (Figure 7's y-axes: 0-70us GM, 0-35us LAPI).
    z = get_roundtrip_us(MicroParams(machine=GM_MARENOSTRUM, msg_bytes=1,
                                     cache_enabled=False, reps=REPS))
    w = get_roundtrip_us(MicroParams(machine=GM_MARENOSTRUM, msg_bytes=1,
                                     cache_enabled=True, reps=REPS))
    assert 14.0 <= z <= 26.0
    assert 9.0 <= w <= 17.0
    z = get_roundtrip_us(MicroParams(machine=LAPI_POWER5, msg_bytes=1,
                                     cache_enabled=False, reps=REPS))
    w = get_roundtrip_us(MicroParams(machine=LAPI_POWER5, msg_bytes=1,
                                     cache_enabled=True, reps=REPS))
    assert 8.0 <= z <= 16.0
    assert 6.0 <= w <= 13.0


def test_fig7_cached_always_below_uncached_small_gets():
    for machine in (GM_MARENOSTRUM, LAPI_POWER5):
        for size in (1, 64, 1024, 8192):
            z = get_roundtrip_us(MicroParams(
                machine=machine, msg_bytes=size, cache_enabled=False,
                reps=REPS))
            w = get_roundtrip_us(MicroParams(
                machine=machine, msg_bytes=size, cache_enabled=True,
                reps=REPS))
            assert w < z


# ---------------------------------------------------------------- Figure 8

@pytest.fixture(scope="module")
def fig8_pointer():
    from repro.experiments import fig8
    return fig8("pointer", scales=[(8, 2), (32, 8), (128, 32)], seed=1)


@pytest.fixture(scope="module")
def fig8_neighborhood():
    from repro.experiments import fig8
    return fig8("neighborhood", scales=[(8, 2), (32, 8), (128, 32)],
                seed=1)


def test_fig8a_hit_rate_degrades_with_scale(fig8_pointer):
    # "Figure 8 (a) shows for Pointer hit ratio degradation as we
    # scale, with a prompt starting point as cache size is reduced."
    for cap in (4, 10, 100):
        series = fig8_pointer.series(f"hit_cap{cap}")
        assert series[0] > series[-1]
    # Small caches collapse first.
    assert fig8_pointer.series("hit_cap4")[-1] \
        < fig8_pointer.series("hit_cap10")[-1] \
        < fig8_pointer.series("hit_cap100")[-1]


def test_fig8b_hit_rate_flat_for_neighborhood(fig8_neighborhood):
    # "only a few cache entries are used and the hit ratio keeps
    # constant as we scale" — and it is insensitive to capacity.
    for cap in (4, 10, 100):
        series = fig8_neighborhood.series(f"hit_cap{cap}")
        assert min(series) > 0.85
        assert max(series) - min(series) < 0.08


# ---------------------------------------------------------------- Figure 9

@pytest.fixture(scope="module")
def fig9_gm():
    from repro.experiments import fig9
    return fig9("gm", scales=[(16, 4), (64, 16)], seeds=(1, 2))


@pytest.fixture(scope="module")
def fig9_lapi():
    from repro.experiments import fig9
    return fig9("lapi", scales=[(64, 4), (256, 16)], seeds=(1, 2))


def test_fig9a_pointer_band(fig9_gm):
    # "The Pointer Stressmark shows good performance, between 30% and
    # 60% improvement".
    for v in fig9_gm.series("pointer"):
        assert 25.0 <= v <= 62.0


def test_fig9a_update_band(fig9_gm):
    # "The Update Stressmark shows a 11% to 22% performance
    # improvement" (we allow a slightly wider band).
    for v in fig9_gm.series("update"):
        assert 9.0 <= v <= 28.0


def test_fig9a_neighborhood_band(fig9_gm):
    # "The Neighborhood Stressmark shows 10% to 20% improvement."
    for v in fig9_gm.series("neighborhood"):
        assert 8.0 <= v <= 25.0


def test_fig9a_field_gains_substantially(fig9_gm):
    # Paper: 35-40%.  Our conservative progress model (a blocked
    # requester polls and can service its node) reproduces the effect
    # directionally at 12-25%; see EXPERIMENTS.md for the discussion.
    for v in fig9_gm.series("field"):
        assert v >= 10.0


def test_fig9b_field_not_measurable_on_lapi(fig9_lapi):
    # "the effects of the address cache are not measurable" (4.7).
    for v in fig9_lapi.series("field"):
        assert abs(v) < 8.0


def test_fig9b_other_stressmarks_comparable_to_gm(fig9_lapi):
    # "The Pointer, Update and Neighborhood Stressmarks show results
    # comparable to the measurements on MareNostrum."
    assert all(20.0 <= v <= 60.0 for v in fig9_lapi.series("pointer"))
    assert all(5.0 <= v <= 28.0 for v in fig9_lapi.series("update"))
    assert all(5.0 <= v <= 25.0 for v in fig9_lapi.series("neighborhood"))


def test_field_asymmetry_gm_vs_lapi(fig9_gm, fig9_lapi):
    # The central section 4.6-vs-4.7 contrast.
    gm_field = min(fig9_gm.series("field"))
    lapi_field = max(abs(v) for v in fig9_lapi.series("field"))
    assert gm_field > 2 * lapi_field


# ---------------------------------------------------------------- Section 6

def test_miss_overhead_below_2pct():
    # "The overhead of unsuccessful attempts to cache remote addresses
    # is relatively small, typically 1.5% and never worse than 2%."
    from repro.experiments import miss_overhead
    fig = miss_overhead(threads=32, nodes=8, seeds=(1, 2, 3))
    for row in fig.rows():
        assert row["overhead_pct"] <= 2.5
