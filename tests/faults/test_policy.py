"""Health windows + repair policies: folds, modes, determinism."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (HealthTracker, PolicyConfig, PolicyEngine,
                          decisions_digest, fold_ewma)
from repro.faults.policy import (MODE_DISABLED, MODE_FAILOVER,
                                 MODE_NORMAL, MODE_TUNED)

CFG = PolicyConfig(window_us=100.0, recover_windows=2,
                   min_attempts=4, repair_delay_us=500.0)


def _sick_window(h, idx, *, link=(0, 1)):
    """Fill window ``idx`` with clearly unhealthy traffic."""
    t = idx * CFG.window_us + 1.0
    h.record(t, *link, attempts=10, timeouts=8, retries=8, deliveries=2)


def _well_window(h, idx, *, link=(0, 1)):
    t = idx * CFG.window_us + 1.0
    h.record(t, *link, attempts=10, deliveries=10)


# ---------------------------------------------------------------------------
# HealthTracker
# ---------------------------------------------------------------------------

def test_health_windows_close_strictly_before_horizon():
    h = HealthTracker(100.0)
    h.record(50.0, 0, 1, attempts=3, deliveries=3)
    h.record(150.0, 0, 1, attempts=2, timeouts=2)
    # at t=150 only window 0 is closed; window 1 is still open
    assert [w.index for w in h.closed_windows(0, 1, -1,
                                              h.horizon(150.0))] == [0]
    wins = h.closed_windows(0, 1, -1, h.horizon(250.0))
    assert [(w.index, w.attempts, w.timeouts) for w in wins] \
        == [(0, 3, 0), (1, 2, 2)]
    assert wins[1].timeout_rate == 1.0
    assert wins[0].delivery_rate == 1.0


def test_health_totals_merge_commutes():
    a = HealthTracker(100.0)
    b = HealthTracker(100.0)
    a.record(10.0, 0, 1, attempts=5, timeouts=1, deliveries=4)
    b.record(20.0, 0, 1, attempts=3, retries=2, deliveries=3)
    b.record(20.0, 2, 3, attempts=1, deliveries=1)
    ab = HealthTracker.merge_totals([a.link_totals(), b.link_totals()])
    ba = HealthTracker.merge_totals([b.link_totals(), a.link_totals()])
    assert ab == ba
    assert ab[(0, 1)] == {"attempts": 8, "timeouts": 1, "retries": 2,
                          "deliveries": 7}


def test_health_validation():
    with pytest.raises(ValueError):
        HealthTracker(0.0)


# ---------------------------------------------------------------------------
# Policy engines
# ---------------------------------------------------------------------------

def test_engine_validation():
    with pytest.raises(ValueError, match="unknown repair policy"):
        PolicyEngine("reboot_everything")
    with pytest.raises(ValueError, match="window_us"):
        PolicyEngine("do_nothing", PolicyConfig(window_us=100.0),
                     HealthTracker(500.0))


def test_do_nothing_never_acts():
    h = HealthTracker(CFG.window_us)
    eng = PolicyEngine("do_nothing", CFG, h, nnodes=4)
    for i in range(5):
        _sick_window(h, i)
    m = eng.mode_of(0, 1, 600.0)
    assert m.mode == MODE_NORMAL
    assert eng.decisions == []


def test_retransmit_tuning_tunes_and_recovers():
    h = HealthTracker(CFG.window_us)
    eng = PolicyEngine("retransmit_tuning", CFG, h, nnodes=4)
    _sick_window(h, 0)
    m = eng.mode_of(0, 1, 150.0)
    assert m.mode == MODE_TUNED
    assert m.timeout_scale == CFG.tuned_timeout_scale
    assert m.backoff_scale == CFG.tuned_backoff_scale
    # recovery: the EWMA must climb back over the threshold first
    # (window 1 still reads unhealthy), then two consecutive healthy
    # windows revert the tuning
    _well_window(h, 1)
    _well_window(h, 2)
    assert eng.mode_of(0, 1, 350.0).mode == MODE_TUNED
    _well_window(h, 3)
    assert eng.mode_of(0, 1, 450.0).mode == MODE_NORMAL
    assert [d["action"] for d in eng.decisions] == ["tune", "untune"]


def test_disable_and_repair_detours_then_restores():
    h = HealthTracker(CFG.window_us)
    eng = PolicyEngine("disable_and_repair", CFG, h, nnodes=4)
    _sick_window(h, 0)
    m = eng.mode_of(0, 1, 150.0)
    assert m.mode == MODE_DISABLED
    assert m.via == 2                       # smallest non-endpoint
    assert m.until_us == 100.0 + CFG.repair_delay_us
    # both decisions (disable + eager restore) are already recorded
    assert [d["action"] for d in eng.decisions] == ["disable", "restore"]
    # querying past the repair timer sees the link back in service
    assert eng.mode_of(0, 1, m.until_us).mode == MODE_NORMAL
    # ... and a fresh flap after restore trips it again
    idx = int(m.until_us // CFG.window_us) + 1
    _sick_window(h, idx)
    t = (idx + 1) * CFG.window_us + 10.0
    assert eng.mode_of(0, 1, t).mode == MODE_DISABLED
    assert [d["action"] for d in eng.decisions] \
        == ["disable", "restore", "disable", "restore"]


def test_disable_without_alternate_hop_has_no_via():
    h = HealthTracker(CFG.window_us)
    eng = PolicyEngine("disable_and_repair", CFG, h, nnodes=2)
    _sick_window(h, 0)
    m = eng.mode_of(0, 1, 150.0)
    assert m.mode == MODE_DISABLED and m.via is None


def test_path_failover_flips_and_fails_back():
    h = HealthTracker(CFG.window_us)
    eng = PolicyEngine("path_failover", CFG, h, nnodes=4)
    _sick_window(h, 0)
    assert eng.mode_of(0, 1, 150.0).mode == MODE_FAILOVER
    for i in (1, 2, 3):
        _well_window(h, i)
    assert eng.mode_of(0, 1, 450.0).mode == MODE_NORMAL
    assert [d["action"] for d in eng.decisions] \
        == ["failover", "failback"]


def test_small_windows_cannot_flap_policies():
    h = HealthTracker(CFG.window_us)
    eng = PolicyEngine("path_failover", CFG, h, nnodes=4)
    # 2 attempts, both timeouts — below min_attempts, stays normal
    h.record(10.0, 0, 1, attempts=2, timeouts=2)
    assert eng.mode_of(0, 1, 150.0).mode == MODE_NORMAL
    assert eng.decisions == []


def test_horizon_bounds_the_knowledge_used():
    h = HealthTracker(CFG.window_us)
    eng = PolicyEngine("path_failover", CFG, h, nnodes=4)
    _sick_window(h, 2)
    # planning at horizon 150: window 2 is not closed yet, so even a
    # query about t=900 must answer from pre-sickness knowledge
    assert eng.mode_of(0, 1, 900.0, horizon=150.0).mode == MODE_NORMAL
    # same query with the horizon past window 2 sees the failover
    assert eng.mode_of(0, 1, 900.0, horizon=350.0).mode == MODE_FAILOVER


def test_fold_is_deterministic_across_query_patterns():
    def run(queries):
        h = HealthTracker(CFG.window_us)
        eng = PolicyEngine("disable_and_repair", CFG, h, nnodes=4)
        for i in (0, 1, 4, 9, 10):
            _sick_window(h, i)
        for i in (2, 3, 5, 6, 7, 8):
            _well_window(h, i)
        for t in queries:
            eng.mode_of(0, 1, t)
        return eng.decisions

    # querying every window vs. only the end produces one decision log
    dense = run([float(t) for t in range(50, 1200, 50)])
    sparse = run([1150.0])
    assert dense == sparse
    assert decisions_digest(dense) == decisions_digest(sparse)


# ---------------------------------------------------------------------------
# Decision digests
# ---------------------------------------------------------------------------

def test_decisions_digest_is_order_independent_and_mergeable():
    d1 = {"t_us": 100.0, "src": 0, "dst": 1, "action": "tune",
          "mode": MODE_TUNED, "until_us": 0.0, "policy": "x"}
    d2 = {"t_us": 200.0, "src": 2, "dst": 3, "action": "disable",
          "mode": MODE_DISABLED, "until_us": 700.0, "policy": "x"}
    assert decisions_digest([d1, d2]) == decisions_digest([d2, d1])
    assert decisions_digest([d1, d2]) == PolicyEngine.merge_digests(
        [decisions_digest([d1]), decisions_digest([d2])])
    assert decisions_digest([]) == 0
    assert decisions_digest([d1]) != decisions_digest([d2])


def test_on_decision_hook_sees_every_decision():
    seen = []
    h = HealthTracker(CFG.window_us)
    eng = PolicyEngine("retransmit_tuning", CFG, h, nnodes=4,
                       on_decision=seen.append)
    _sick_window(h, 0)
    eng.mode_of(0, 1, 150.0)
    assert seen == eng.decisions


# ---------------------------------------------------------------------------
# EWMA fold properties
# ---------------------------------------------------------------------------

@given(rates=st.lists(st.floats(0.0, 1.0), max_size=12),
       alpha=st.floats(0.01, 1.0))
@settings(max_examples=200, deadline=None)
def test_ewma_fold_stays_bounded_and_is_deterministic(rates, alpha):
    e = 1.0
    for r in rates:
        e = fold_ewma(e, r, alpha)
        assert 0.0 <= e <= 1.0
    e2 = 1.0
    for r in rates:
        e2 = fold_ewma(e2, r, alpha)
    assert e == e2


@given(rates=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=12),
       alpha=st.floats(0.01, 1.0),
       cut=st.integers(0, 12))
@settings(max_examples=200, deadline=None)
def test_ewma_fold_resumes_from_any_split(rates, alpha, cut):
    # the memoized monotone fold: folding [a | b] equals folding a,
    # then continuing with b from the memoized value
    cut = min(cut, len(rates))
    whole = 1.0
    for r in rates:
        whole = fold_ewma(whole, r, alpha)
    part = 1.0
    for r in rates[:cut]:
        part = fold_ewma(part, r, alpha)
    for r in rates[cut:]:
        part = fold_ewma(part, r, alpha)
    assert part == whole
