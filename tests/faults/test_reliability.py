"""Dedup ledger and backoff schedule — pure units, no simulator."""

import pytest

from repro.faults import DedupLedger, ReliabilityConfig


# ---------------------------------------------------------------------------
# Backoff schedule
# ---------------------------------------------------------------------------

def test_backoff_schedule_is_capped_exponential():
    r = ReliabilityConfig(backoff_base_us=4.0, backoff_factor=2.0,
                          backoff_max_us=128.0)
    schedule = [r.backoff_us(k) for k in range(8)]
    assert schedule == [4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 128.0, 128.0]


def test_backoff_is_deterministic():
    a = ReliabilityConfig()
    b = ReliabilityConfig()
    assert [a.backoff_us(k) for k in range(10)] == \
           [b.backoff_us(k) for k in range(10)]


@pytest.mark.parametrize("kw", [
    dict(am_timeout_us=0.0),
    dict(rdma_timeout_us=-1.0),
    dict(max_retries=-1),
    dict(backoff_factor=0.5),
    dict(backoff_base_us=10.0, backoff_max_us=5.0),
    dict(ledger_capacity=0),
])
def test_config_validation(kw):
    with pytest.raises(ValueError):
        ReliabilityConfig(**kw)


# ---------------------------------------------------------------------------
# Dedup ledger
# ---------------------------------------------------------------------------

def test_ledger_first_record_wins():
    led = DedupLedger()
    key = (0, 17)
    assert led.get(key) is None
    led.record(key, {"base": 0x1000}, 16)
    led.record(key, {"base": 0xBAD}, 99)   # replay must not overwrite
    assert led.get(key) == ({"base": 0x1000}, 16)
    assert led.records == 1
    assert key in led


def test_ledger_counts_hits():
    led = DedupLedger()
    led.record((1, 1), "x", 0)
    assert led.hits == 0
    led.get((1, 1))
    led.get((1, 1))
    led.get((2, 2))        # miss: not counted as a hit
    assert led.hits == 2


def test_ledger_fifo_eviction():
    led = DedupLedger(capacity=3)
    for seq in range(5):
        led.record((0, seq), seq, 0)
    assert len(led) == 3
    assert led.evictions == 2
    # The two oldest aged out; the newest three survive.
    assert (0, 0) not in led and (0, 1) not in led
    assert all((0, s) in led for s in (2, 3, 4))


def test_ledger_rejects_zero_capacity():
    with pytest.raises(ValueError):
        DedupLedger(capacity=0)
