"""FaultPlan construction, validation, and the JSON round trip."""

import math

import pytest

from repro.faults import (
    ANY_NODE,
    FaultPlan,
    HandlerStall,
    LinkFault,
    NicStall,
    PinBudget,
    PROFILES,
    resolve_profile,
)


def full_plan() -> FaultPlan:
    return FaultPlan(
        seed=42,
        name="everything",
        links=(
            LinkFault(kind="drop", prob=0.1, src=0, dst=2, scope="both"),
            LinkFault(kind="duplicate", prob=0.05),
            LinkFault(kind="delay", prob=0.5, delay_us=12.5,
                      t_start=100.0, t_end=250.0, scope="rdma"),
        ),
        nic_stalls=(NicStall(stall_us=20.0, node=1, prob=0.3,
                             t_end=500.0),),
        handler_stalls=(HandlerStall(stall_us=40.0),),
        pin_budgets=(PinBudget(budget_bytes=4096, node=3),),
    )


def test_json_round_trip_is_lossless():
    plan = full_plan()
    again = FaultPlan.from_json(plan.to_json())
    assert again == plan
    # And again, through the pretty-printed form.
    assert FaultPlan.from_json(plan.to_json(indent=2)) == plan


def test_json_spells_open_windows_as_inf():
    plan = FaultPlan(links=(LinkFault(kind="drop", prob=0.1),))
    text = plan.to_json()
    assert '"inf"' in text
    assert FaultPlan.from_json(text).links[0].t_end == math.inf


def test_from_json_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown fault-plan keys"):
        FaultPlan.from_json('{"seed": 1, "typo_field": []}')


def test_empty_plan_detection():
    assert FaultPlan().empty
    assert FaultPlan(seed=99, name="label").empty
    assert not full_plan().empty


def test_with_seed_changes_only_the_seed():
    plan = full_plan()
    other = plan.with_seed(7)
    assert other.seed == 7
    assert other.links == plan.links
    assert other.name == plan.name


@pytest.mark.parametrize("bad", [
    lambda: LinkFault(kind="corrupt", prob=0.5),
    lambda: LinkFault(kind="drop", prob=1.5),
    lambda: LinkFault(kind="drop", prob=0.5, scope="carrier-pigeon"),
    lambda: LinkFault(kind="delay", prob=0.5),            # no delay_us
    lambda: LinkFault(kind="drop", prob=0.5, t_start=10.0, t_end=5.0),
    lambda: NicStall(stall_us=0.0),
    lambda: HandlerStall(stall_us=-1.0),
    lambda: PinBudget(budget_bytes=-1),
])
def test_rule_validation_rejects_nonsense(bad):
    with pytest.raises(ValueError):
        bad()


def test_link_fault_matching_wildcards_and_windows():
    rule = LinkFault(kind="drop", prob=1.0, src=ANY_NODE, dst=2,
                     t_start=10.0, t_end=20.0)
    assert rule.matches(0, 2, 10.0)
    assert rule.matches(5, 2, 19.9)
    assert not rule.matches(0, 3, 15.0)     # wrong dst
    assert not rule.matches(0, 2, 9.9)      # before window
    assert not rule.matches(0, 2, 20.0)     # t_end exclusive


def test_profiles_are_valid_and_named():
    for name, plan in PROFILES.items():
        assert plan.name == name
        assert not plan.empty
        # Every profile must survive its own round trip.
        assert FaultPlan.from_json(plan.to_json()) == plan


def test_resolve_profile_by_name_inline_and_file(tmp_path):
    assert resolve_profile("chaos") is PROFILES["chaos"]
    assert resolve_profile("chaos", fault_seed=9).seed == 9

    inline = resolve_profile('{"seed": 3, "pin_budgets": '
                             '[{"budget_bytes": 64, "node": -1}]}')
    assert inline.seed == 3
    assert inline.pin_budgets[0].budget_bytes == 64

    path = tmp_path / "plan.json"
    path.write_text(full_plan().to_json(indent=2), encoding="utf-8")
    assert resolve_profile(str(path)) == full_plan()

    with pytest.raises(ValueError, match="unknown fault profile"):
        resolve_profile("no-such-profile")
