"""Link-trace plane: segments, composition, generators, resolution."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (LinkRule, LinkTrace, PROFILES, TraceSegment,
                          fate_u01, make_trace, resolve_profile,
                          resolve_trace, sniff_trace_json)
from repro.faults.trace import TRACE_SHAPES, fate_hash


# ---------------------------------------------------------------------------
# Segments
# ---------------------------------------------------------------------------

def test_segment_validation():
    with pytest.raises(ValueError):
        TraceSegment(t_start=10.0, t_end=10.0)
    with pytest.raises(ValueError):
        TraceSegment(t_start=-1.0, t_end=5.0)
    with pytest.raises(ValueError):
        TraceSegment(t_start=0.0, t_end=5.0, loss=1.5)
    with pytest.raises(ValueError):
        TraceSegment(t_start=0.0, t_end=5.0, delay_us=-1.0)


def test_segment_constant_and_lerp():
    const = TraceSegment(t_start=0.0, t_end=100.0, loss=0.4)
    assert const.at(0.0) == (0.4, 0.0, 0.0)
    assert const.at(99.0) == (0.4, 0.0, 0.0)
    ramp = TraceSegment(t_start=0.0, t_end=100.0, loss=0.0,
                        loss_end=0.8, delay_us=0.0, delay_end_us=40.0)
    assert ramp.at(0.0) == (0.0, 0.0, 0.0)
    assert ramp.at(50.0) == pytest.approx((0.4, 0.0, 20.0))
    assert ramp.at(100.0) == pytest.approx((0.8, 0.0, 40.0))


def test_overlapping_segments_compose():
    # Losses compose independently, delays add.
    rule = LinkRule(src=0, dst=1, segments=(
        TraceSegment(t_start=0.0, t_end=100.0, loss=0.5, delay_us=3.0),
        TraceSegment(t_start=50.0, t_end=150.0, loss=0.5, delay_us=4.0),
    ))
    assert rule.at(25.0) == pytest.approx((0.5, 0.0, 3.0))
    assert rule.at(75.0) == pytest.approx((0.75, 0.0, 7.0))
    assert rule.at(125.0) == pytest.approx((0.5, 0.0, 4.0))
    assert rule.at(200.0) == (0.0, 0.0, 0.0)


def test_drop_prob_combines_loss_and_corruption():
    tr = LinkTrace(links=(LinkRule(src=0, dst=1, segments=(
        TraceSegment(t_start=0.0, t_end=100.0, loss=0.5,
                     corrupt=0.5),)),))
    assert tr.drop_prob(0, 1, 10.0) == pytest.approx(0.75)
    assert tr.drop_prob(1, 0, 10.0) == 0.0     # direction matters
    assert tr.drop_prob(0, 1, 200.0) == 0.0    # after the window


# ---------------------------------------------------------------------------
# JSON round trip
# ---------------------------------------------------------------------------

def test_trace_json_roundtrip():
    tr = make_trace("degrade", 8, 5)
    back = LinkTrace.from_json(tr.to_json())
    assert back == tr
    # inf endpoints survive the trip
    open_ended = LinkTrace(seed=2, links=(LinkRule(segments=(
        TraceSegment(t_start=10.0, t_end=math.inf, loss=0.2),)),))
    assert LinkTrace.from_json(open_ended.to_json()) == open_ended


def test_trace_json_rejects_wrong_kind_and_unknown_keys():
    with pytest.raises(ValueError, match="not a link trace"):
        LinkTrace.from_json('{"seed": 1, "links": []}')
    with pytest.raises(ValueError, match="unknown link-trace keys"):
        LinkTrace.from_json(
            '{"kind": "link-trace", "seed": 1, "bogus": 2}')


def test_sniff_trace_json():
    assert sniff_trace_json(LinkTrace().to_json())
    assert not sniff_trace_json(PROFILES["drop"].to_json())
    assert not sniff_trace_json("not json at all")


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("shape", sorted(TRACE_SHAPES))
def test_generators_bite_inside_the_horizon(shape):
    tr = make_trace(shape, 8, seed=3, horizon_us=10_000.0)
    assert tr.name == shape
    links = tr.affected_links(8)
    assert links, "generator produced no affected link"
    (src, dst), = links
    assert 0 <= src < 8 and 0 <= dst < 8 and src != dst
    worst = max(tr.drop_prob(src, dst, t)
                for t in range(0, 10_000, 25))
    assert worst > 0.0
    # and nothing outside the horizon
    assert tr.drop_prob(src, dst, 10_001.0) == 0.0


def test_generators_are_seed_deterministic():
    assert make_trace("flap", 8, 7) == make_trace("flap", 8, 7)
    assert make_trace("flap", 8, 7) != make_trace("flap", 8, 8)


def test_make_trace_unknown_shape():
    with pytest.raises(ValueError, match="unknown trace shape"):
        make_trace("meteor", 8, 0)


# ---------------------------------------------------------------------------
# Fate hashing
# ---------------------------------------------------------------------------

def test_fate_u01_is_pure_and_order_sensitive():
    assert fate_u01(1, 2, 3) == fate_u01(1, 2, 3)
    assert fate_u01(1, 2, 3) != fate_u01(3, 2, 1)
    assert 0.0 <= fate_u01(0) < 1.0


@given(st.lists(st.integers(min_value=0, max_value=2 ** 62),
                min_size=1, max_size=6))
@settings(max_examples=200, deadline=None)
def test_fate_hash_stays_in_64_bits_and_spreads(keys):
    h = fate_hash(*keys)
    assert 0 <= h < 2 ** 64
    assert fate_hash(*keys) == h
    # flipping any one key moves the hash (avalanche sanity)
    bumped = list(keys)
    bumped[0] += 1
    assert fate_hash(*bumped) != h


# ---------------------------------------------------------------------------
# Resolution + mixing errors (satellite: point users at the right flag)
# ---------------------------------------------------------------------------

def test_resolve_trace_by_shape_inline_and_file(tmp_path):
    tr = resolve_trace("flap", 8, trace_seed=7)
    assert tr == make_trace("flap", 8, 7)
    inline = resolve_trace(tr.to_json(), 8)
    assert inline == tr
    path = tmp_path / "trace.json"
    path.write_text(tr.to_json(), encoding="utf-8")
    assert resolve_trace(str(path), 8) == tr
    # seed override applies to files too
    assert resolve_trace(str(path), 8, trace_seed=99).seed == 99


def test_resolve_trace_rejects_fault_plan():
    plan_json = PROFILES["drop"].to_json()
    with pytest.raises(ValueError,
                       match="not --link-trace"):
        resolve_trace(plan_json, 8)


def test_resolve_trace_rejects_fault_plan_file(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(PROFILES["drop"].to_json(), encoding="utf-8")
    with pytest.raises(ValueError, match="--fault-profile"):
        resolve_trace(str(path), 8)


def test_resolve_trace_unknown_name():
    with pytest.raises(ValueError, match="unknown link trace"):
        resolve_trace("nope", 8)


def test_resolve_profile_rejects_link_trace():
    tr_json = make_trace("gray", 8, 1).to_json()
    with pytest.raises(ValueError, match="--link-trace"):
        resolve_profile(tr_json)


def test_resolve_profile_rejects_link_trace_file(tmp_path):
    path = tmp_path / "trace.json"
    path.write_text(make_trace("gray", 8, 1).to_json(),
                    encoding="utf-8")
    with pytest.raises(ValueError, match="not a static"):
        resolve_profile(str(path))


# ---------------------------------------------------------------------------
# Interpolation properties
# ---------------------------------------------------------------------------

@given(loss=st.floats(0.0, 1.0), loss_end=st.floats(0.0, 1.0),
       frac=st.floats(0.0, 1.0))
@settings(max_examples=200, deadline=None)
def test_lerp_stays_between_endpoints(loss, loss_end, frac):
    seg = TraceSegment(t_start=0.0, t_end=100.0, loss=loss,
                       loss_end=loss_end)
    got, _, _ = seg.at(frac * 100.0)
    lo, hi = min(loss, loss_end), max(loss, loss_end)
    assert lo - 1e-12 <= got <= hi + 1e-12


@given(t=st.floats(0.0, 20_000.0), seed=st.integers(0, 50))
@settings(max_examples=100, deadline=None)
def test_trace_condition_is_a_pure_function_of_time(t, seed):
    tr = make_trace("degrade", 8, seed)
    (src, dst), = tr.affected_links(8)
    assert tr.at(src, dst, t) == tr.at(src, dst, t)
    loss, corrupt, delay = tr.at(src, dst, t)
    assert 0.0 <= loss <= 1.0 and 0.0 <= corrupt <= 1.0
    assert delay >= 0.0


def test_json_roundtrip_preserves_conditions():
    tr = make_trace("degrade", 8, 4)
    back = LinkTrace.from_json(tr.to_json())
    (src, dst), = tr.affected_links(8)
    for t in (0.0, 777.7, 5000.0, 19_999.0):
        assert back.at(src, dst, t) == tr.at(src, dst, t)


def test_to_json_is_canonical():
    tr = make_trace("burst", 8, 9)
    assert json.loads(tr.to_json()) == json.loads(
        LinkTrace.from_json(tr.to_json()).to_json())
