"""Transport-level recovery protocols under a hostile fault plan."""

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkFault,
    ReliabilityConfig,
    ReliabilityError,
)
from repro.network import Cluster, GM_MARENOSTRUM
from repro.sim import Simulator


def make(plan=None, reliability=None, nnodes=4):
    sim = Simulator()
    cluster = Cluster(sim, GM_MARENOSTRUM, nnodes)
    for node in cluster.nodes:
        node.progress.enter_runtime()
    tp = cluster.transport
    if reliability is not None:
        tp.reliability = reliability
    if plan is not None:
        tp.faults = FaultInjector(plan, sim)
    return sim, cluster


def counting_handler(box):
    def handler(node):
        box["runs"] = box.get("runs", 0) + 1
        return 1.5, {"base": 0xBEEF}, 16
    return handler


def test_retry_recovers_from_a_transient_drop_window():
    # Every message in [0, 10) drops; the retransmission after the
    # first timeout lands in a healthy fabric and completes the GET.
    plan = FaultPlan(seed=1, links=(
        LinkFault(kind="drop", prob=1.0, t_end=10.0, scope="am"),))
    sim, cluster = make(plan, ReliabilityConfig(am_timeout_us=30.0))
    src, dst = cluster.node(0), cluster.node(1)
    box = {}

    def bench():
        reply = yield from cluster.transport.default_get(
            src, dst, 8, counting_handler(box))
        return reply

    reply = sim.run_process(bench())
    assert reply.payload == {"base": 0xBEEF}
    assert box["runs"] == 1                       # handler ran once
    c = cluster.transport.counters.by_kind
    assert c.get("am-timeout", 0) >= 1
    assert c.get("am-retry", 0) >= 1


def test_retry_budget_exhaustion_raises_reliability_error():
    plan = FaultPlan(seed=2, links=(
        LinkFault(kind="drop", prob=1.0, scope="am"),))
    sim, cluster = make(plan, ReliabilityConfig(
        am_timeout_us=20.0, max_retries=2, backoff_base_us=1.0,
        backoff_max_us=4.0))
    src, dst = cluster.node(0), cluster.node(1)

    def bench():
        yield from cluster.transport.default_get(
            src, dst, 8, lambda n: (1.0, None, 0))

    with pytest.raises(ReliabilityError, match="gave up after 2"):
        sim.run_process(bench())


def test_dropped_reply_releases_the_initiator_credit():
    # The request arrives, the handler runs, the reply vanishes.  The
    # retransmission is answered from the dedup ledger; through it all
    # the per-destination credit pool must end the op fully released.
    plan = FaultPlan(seed=6, links=(
        LinkFault(kind="drop", prob=1.0, t_end=5.0, scope="am"),))
    sim, cluster = make(plan, ReliabilityConfig(am_timeout_us=30.0))
    src, dst = cluster.node(0), cluster.node(1)
    box = {}

    def bench():
        reply = yield from cluster.transport.default_get(
            src, dst, 8, counting_handler(box))
        return reply

    reply = sim.run_process(bench())
    assert reply.payload == {"base": 0xBEEF}
    assert cluster.transport._credit_pool(dst)._users == 0


def test_duplicate_delivery_is_absorbed_by_the_ledger():
    plan = FaultPlan(seed=3, links=(
        LinkFault(kind="duplicate", prob=1.0, scope="am"),))
    sim, cluster = make(plan)
    src, dst = cluster.node(0), cluster.node(1)
    box = {}

    def bench():
        reply = yield from cluster.transport.default_get(
            src, dst, 8, counting_handler(box))
        return reply

    reply = sim.run_process(bench())
    sim.run()                                     # drain the dup flight
    assert reply.payload == {"base": 0xBEEF}
    assert box["runs"] == 1                       # idempotent: one run
    c = cluster.transport.counters.by_kind
    assert c.get("am-duplicate-delivery", 0) >= 1


def test_ledger_replay_returns_original_payload_without_handler():
    # A replayed request (lost reply) must be answered from the ledger
    # even if the handler would now return something different.  Seed 8
    # makes the first drop draw pick the *reply* leg, so the handler
    # runs on attempt one and the retransmission finds the ledger.
    plan = FaultPlan(seed=8, links=(
        LinkFault(kind="drop", prob=1.0, t_end=5.0, scope="am"),))
    sim, cluster = make(plan, ReliabilityConfig(am_timeout_us=30.0))
    src, dst = cluster.node(0), cluster.node(1)
    box = {"value": "first"}

    def mutating_handler(node):
        val = box["value"]
        box["value"] = "second"
        return 1.0, val, 0

    def bench():
        reply = yield from cluster.transport.default_get(
            src, dst, 8, mutating_handler)
        return reply

    reply = sim.run_process(bench())
    assert reply.payload == "first"
    assert cluster.transport.counters.by_kind.get("am-replay", 0) >= 1


def test_rdma_get_drop_reports_failure_and_charges_timeout():
    plan = FaultPlan(seed=5, links=(
        LinkFault(kind="drop", prob=1.0, scope="rdma"),))
    rel = ReliabilityConfig(rdma_timeout_us=40.0)
    sim, cluster = make(plan, rel)
    src, dst = cluster.node(0), cluster.node(1)

    def bench():
        t0 = sim.now
        ok = yield from cluster.transport.rdma_get(src, dst, 64)
        return ok, sim.now - t0

    ok, elapsed = sim.run_process(bench())
    assert ok is False
    assert elapsed >= rel.rdma_timeout_us
    assert cluster.transport.counters.by_kind.get("rdma-timeout", 0) == 1


def test_rdma_put_drop_returns_none():
    plan = FaultPlan(seed=7, links=(
        LinkFault(kind="drop", prob=1.0, scope="rdma"),))
    sim, cluster = make(plan, ReliabilityConfig(rdma_timeout_us=40.0))
    src, dst = cluster.node(0), cluster.node(1)

    def bench():
        ticket = yield from cluster.transport.rdma_put(src, dst, 64)
        return ticket

    assert sim.run_process(bench()) is None


def test_healthy_fabric_with_injector_matches_no_injector():
    # A plan whose rules never fire (prob 0 outside any window) must
    # not perturb timing: the fault plane only costs where it bites.
    sim_a, cluster_a = make()
    plan = FaultPlan(seed=8, links=(
        LinkFault(kind="drop", prob=1.0, t_start=1e9, scope="am"),))
    sim_b, cluster_b = make(plan)

    def bench(sim, cluster):
        def run():
            yield from cluster.transport.default_get(
                cluster.node(0), cluster.node(1), 8,
                lambda n: (1.5, None, 0))
            return sim.now
        return sim.run_process(run())

    assert bench(sim_a, cluster_a) == bench(sim_b, cluster_b)
