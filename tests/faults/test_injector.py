"""FaultInjector: deterministic draws, scoping, and the pin budget."""

from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkFault,
    NicStall,
    NO_FAULT,
    PinBudget,
)
from repro.sim import Simulator


def make(plan: FaultPlan) -> FaultInjector:
    return FaultInjector(plan, Simulator())


def fate_bits(fate) -> tuple:
    return (fate.drop_request, fate.drop_reply, fate.duplicate,
            fate.delay_us)


def test_same_seed_same_fate_sequence():
    plan = FaultPlan(seed=5, links=(
        LinkFault(kind="drop", prob=0.5, scope="both"),
        LinkFault(kind="duplicate", prob=0.5),
        LinkFault(kind="delay", prob=0.5, delay_us=7.0),
    ))
    a, b = make(plan), make(plan)
    seq_a = [fate_bits(a.am_fate(0, 1)) for _ in range(200)]
    seq_b = [fate_bits(b.am_fate(0, 1)) for _ in range(200)]
    assert seq_a == seq_b
    # A different seed produces a different schedule.
    c = make(plan.with_seed(6))
    assert seq_a != [fate_bits(c.am_fate(0, 1)) for _ in range(200)]


def test_no_fault_singleton_is_never_mutated():
    plan = FaultPlan(seed=1, links=(
        LinkFault(kind="drop", prob=0.9, scope="both"),))
    inj = make(plan)
    for _ in range(300):
        inj.am_fate(0, 1)
        inj.rdma_fate(0, 1)
    assert NO_FAULT.healthy
    assert fate_bits(NO_FAULT) == (False, False, False, 0.0)


def test_scope_splits_am_from_rdma():
    plan = FaultPlan(seed=2, links=(
        LinkFault(kind="drop", prob=1.0, scope="rdma"),))
    inj = make(plan)
    assert inj.am_fate(0, 1) is NO_FAULT        # no AM rules at all
    assert inj.rdma_fate(0, 1).drop_request     # rule bites RDMA only


def test_rdma_drop_folds_reply_into_request():
    # For a one-sided op there is no reply message: any drop means the
    # completion never arrives, so both legs collapse to drop_request.
    plan = FaultPlan(seed=3, links=(
        LinkFault(kind="drop", prob=1.0, scope="rdma"),))
    inj = make(plan)
    for _ in range(50):
        fate = inj.rdma_fate(0, 1)
        assert fate.drop_request
        assert not fate.drop_reply or fate.drop_request


def test_time_window_gates_rules():
    sim = Simulator()
    plan = FaultPlan(seed=4, links=(
        LinkFault(kind="drop", prob=1.0, t_start=100.0, t_end=200.0,
                  scope="am"),))
    inj = FaultInjector(plan, sim)
    assert inj.am_fate(0, 1) is NO_FAULT        # now=0, before window
    sim.now = 150.0
    fate = inj.am_fate(0, 1)
    assert fate.drop_request or fate.drop_reply
    sim.now = 200.0
    assert inj.am_fate(0, 1) is NO_FAULT        # t_end exclusive


def test_nic_stall_accumulates_and_counts():
    plan = FaultPlan(seed=5, nic_stalls=(
        NicStall(stall_us=10.0, prob=1.0),
        NicStall(stall_us=5.0, node=0, prob=1.0),
    ))
    inj = make(plan)
    assert inj.nic_stall(0) == 15.0             # both rules match node 0
    assert inj.nic_stall(1) == 10.0             # only the wildcard
    assert inj.injected == 3


def test_pin_budget_is_cumulative_per_node():
    plan = FaultPlan(pin_budgets=(PinBudget(budget_bytes=100),))
    inj = make(plan)
    assert inj.pin_allowed(0, 60)
    assert not inj.pin_allowed(0, 50)           # 60 + 50 > 100
    assert inj.pin_allowed(0, 40)               # denial charged nothing
    assert not inj.pin_allowed(0, 1)            # budget now exactly spent
    assert inj.pin_allowed(1, 100)              # budgets are per node


def test_tightest_matching_budget_wins():
    plan = FaultPlan(pin_budgets=(
        PinBudget(budget_bytes=1000),
        PinBudget(budget_bytes=64, node=2),
    ))
    inj = make(plan)
    assert inj.pin_allowed(0, 512)
    assert not inj.pin_allowed(2, 512)          # node 2's tighter cap
    assert inj.pin_allowed(2, 64)


def test_unmatched_nodes_have_no_budget():
    plan = FaultPlan(pin_budgets=(PinBudget(budget_bytes=0, node=7),))
    inj = make(plan)
    assert inj.pin_allowed(0, 1 << 30)
    assert not inj.pin_allowed(7, 1)
