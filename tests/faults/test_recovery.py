"""End-to-end recovery: the runtime must compute correct answers on a
faulty fabric, degrade RDMA to AM gracefully, and stay bit-identical
when the plan is empty."""

from dataclasses import replace

import pytest

from repro.faults import FaultPlan, LinkFault, PinBudget, PROFILES
from repro.memory import PinLimitError
from repro.network import GM_MARENOSTRUM
from repro.obs import DEGRADE, FAULT_INJECT, RETRY, TIMEOUT
from repro.obs.events import EventLog
from repro.runtime import Runtime, RuntimeConfig
from repro.util.units import KB

N = 256


def kernel(th):
    arr = yield from th.all_alloc(N, blocksize=32, dtype="u8")
    for i in range(24):
        idx = (th.id * 131 + i * 17) % N
        yield from th.put(arr, idx, (idx * 3) % 251)
    yield from th.barrier()
    for i in range(24):
        idx = (th.id * 131 + i * 17) % N
        v = yield from th.get(arr, idx)
        assert v == (idx * 3) % 251, (idx, v)
    yield from th.barrier()


def run(plan, nthreads=8, events=None, **kw):
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=nthreads,
                        fault_plan=plan, events=events, seed=1, **kw)
    rt = Runtime(cfg)
    rt.spawn(kernel)
    return rt, rt.run()


# ---------------------------------------------------------------------------
# Zero-fault bit identity
# ---------------------------------------------------------------------------

def test_empty_plan_is_bit_identical_to_no_plan():
    _, base = run(None)
    _, empty = run(FaultPlan(seed=123))
    assert empty.elapsed_us == base.elapsed_us
    assert empty.sim_events == base.sim_events


def test_no_plan_installs_no_injector():
    rt, _ = run(FaultPlan())
    assert rt.faults is None
    assert rt.cluster.transport.faults is None


# ---------------------------------------------------------------------------
# Deterministic replay
# ---------------------------------------------------------------------------

def test_chaos_run_is_replayable_from_seeds():
    plan = PROFILES["chaos"].with_seed(7)
    _, a = run(plan)
    _, b = run(plan)
    assert a.elapsed_us == b.elapsed_us
    assert a.sim_events == b.sim_events
    # A different fault seed follows a different schedule.
    _, c = run(plan.with_seed(8))
    assert (c.elapsed_us, c.sim_events) != (a.elapsed_us, a.sim_events)


# ---------------------------------------------------------------------------
# Recovery paths
# ---------------------------------------------------------------------------

def test_duplicates_are_idempotent():
    plan = FaultPlan(seed=2, links=(
        LinkFault(kind="duplicate", prob=0.5, scope="am"),))
    rt, res = run(plan)                 # kernel self-checks every value
    tp = rt.cluster.transport
    assert tp.counters.by_kind.get("am-duplicate-delivery", 0) > 0
    assert tp.ledger.hits > 0           # dup deliveries hit the ledger


def test_drops_recover_via_retry():
    # Cache off keeps the traffic on AM, where the drop rule bites;
    # with the cache warm almost everything rides RDMA instead.
    plan = FaultPlan(seed=3, links=(
        LinkFault(kind="drop", prob=0.15, scope="am"),))
    rt, res = run(plan, cache_enabled=False)
    m = rt.metrics
    assert m.timeouts > 0 and m.retries > 0
    assert m.retries <= m.timeouts      # every retry follows a timeout


def test_rdma_timeout_degrades_to_am_and_reseeds():
    # All RDMA completions vanish during the first window; afterwards
    # the fabric heals.  The fallback must invalidate the suspect cache
    # entry, complete over AM, and let RDMA resume once healthy.
    plan = FaultPlan(seed=4, links=(
        LinkFault(kind="drop", prob=1.0, t_end=400.0, scope="rdma"),))
    log = EventLog(enabled=True)
    rt, res = run(plan, events=log)
    m = rt.metrics
    assert m.rdma_timeouts > 0
    # Concurrent timeouts against the same entry collapse to one
    # invalidation, so the count is positive but bounded above.
    inv = rt.aggregate_cache_stats().invalidations
    assert 0 < inv <= m.rdma_timeouts
    assert m.rdma_gets + m.rdma_puts > 0     # fast path resumed
    degrades = [e for e in log if e.kind == DEGRADE]
    assert degrades and all(
        e.attrs["mode"] == "rdma_to_am" for e in degrades)


def test_pin_exhaustion_degrades_to_am_forever():
    plan = FaultPlan(seed=5, pin_budgets=(PinBudget(budget_bytes=0),))
    rt, res = run(plan)
    m = rt.metrics
    assert m.pin_degrades > 0
    assert m.rdma_gets + m.rdma_puts == 0    # nothing ever pinned
    assert any(rt.pinned_table(n.id).unpinnable_count > 0
               for n in rt.cluster.nodes)


def test_real_pin_limit_degrades_when_configured():
    # Without a fault plan the strict behavior raises (covered in
    # tests/runtime/test_failure_injection.py); with the degradation
    # switch the same machine limit turns into AM-forever service.
    tiny = replace(
        GM_MARENOSTRUM,
        transport=GM_MARENOSTRUM.transport.with_overrides(
            max_pin_total_bytes=4 * KB))

    def big(th):
        # 64 KB arena per node — far beyond the 4 KB pin budget.
        arr = yield from th.all_alloc(64 * KB, blocksize=None, dtype="u1")
        yield from th.barrier()
        if th.id == 0:
            v = yield from th.get(arr, 40 * KB)  # first touch pins
            assert v == 0
        yield from th.barrier()

    cfg = RuntimeConfig(machine=tiny, nthreads=4, threads_per_node=2,
                        seed=1, degrade_pin_failures=True)
    rt = Runtime(cfg)
    rt.spawn(big)
    rt.run()                                 # completes, no raise
    assert rt.metrics.pin_degrades > 0

    strict = RuntimeConfig(machine=tiny, nthreads=4, threads_per_node=2,
                           seed=1)
    rt2 = Runtime(strict)
    rt2.spawn(big)
    with pytest.raises(PinLimitError):
        rt2.run()


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------

def test_flight_recorder_captures_fault_lifecycle():
    plan = FaultPlan(seed=6, links=(
        LinkFault(kind="drop", prob=0.15, scope="both"),))
    log = EventLog(enabled=True)
    rt, res = run(plan, events=log)
    kinds = {e.kind for e in log}
    assert FAULT_INJECT in kinds
    assert TIMEOUT in kinds
    assert RETRY in kinds
    # Injection events carry the causal fault label.
    faults = [e for e in log if e.kind == FAULT_INJECT]
    assert all("fault" in e.attrs for e in faults)
    assert len(faults) == rt.metrics.faults_injected


def test_summary_exposes_reliability_counters():
    plan = PROFILES["chaos"].with_seed(11)
    rt, res = run(plan)
    s = res.metrics.summary()
    for key in ("retries", "timeouts", "rdma_fallbacks",
                "degraded_handles", "faults_injected"):
        assert key in s
    assert s["faults_injected"] > 0
