"""SVD life-cycle integration: dynamic allocation churn across the
whole runtime (section 2.1's consistency rules, exercised end-to-end).
"""

import pytest

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig
from repro.runtime.handle import ALL_PARTITION


def make_rt(**kw):
    kw.setdefault("threads_per_node", 4)
    kw.setdefault("seed", 1)
    return Runtime(RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=8, **kw))


def test_alloc_free_churn_keeps_directory_consistent():
    rt = make_rt()

    def kernel(th):
        for round_ in range(4):
            arr = yield from th.all_alloc(128, blocksize=16, dtype="u4")
            yield from th.barrier()
            if th.id == round_ % 8:
                yield from th.put(arr, 100, round_)
                yield from th.fence()
            yield from th.barrier()
            v = yield from th.get(arr, 100)
            assert v == round_
            yield from th.all_free(arr)
        yield from th.barrier()

    rt.spawn(kernel)
    res = rt.run()
    assert rt.metrics.allocations == 4
    assert rt.metrics.frees == 4
    # After all frees every node's pin table and cache are empty.
    for node in rt.cluster.nodes:
        assert rt.pinned_table(node.id).pins.pinned_bytes == 0
        assert len(rt.addr_cache(node.id)) == 0


def test_handles_increment_within_all_partition():
    rt = make_rt()
    seen = []

    def kernel(th):
        a = yield from th.all_alloc(16, blocksize=2, dtype="u4")
        b = yield from th.all_alloc(16, blocksize=2, dtype="u4")
        if th.id == 0:
            seen.extend([a.handle, b.handle])
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()
    assert seen[0].partition == ALL_PARTITION
    assert seen[1].index == seen[0].index + 1


def test_mixed_global_and_collective_allocation():
    rt = make_rt()
    out = {}

    def kernel(th):
        shared = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        if th.id == 3:
            private = yield from th.global_alloc(32, blocksize=4,
                                                 dtype="u4")
            out["private"] = private
        yield from th.barrier()
        # Everyone can address the globally-allocated array.
        if th.id == 6:
            yield from th.put(out["private"], 0, 42)
            yield from th.fence()
        yield from th.barrier()
        v = yield from th.get(out["private"], 0)
        assert v == 42
        yield from th.barrier()
        _ = shared

    rt.spawn(kernel)
    rt.run()
    assert out["private"].handle.partition == 3


def test_memory_returns_to_heap_after_free():
    rt = make_rt()
    before = {n.id: n.memory.allocated_bytes for n in rt.cluster.nodes}

    def kernel(th):
        arr = yield from th.all_alloc(4096, blocksize=512, dtype="u8")
        yield from th.barrier()
        yield from th.all_free(arr)
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()
    after = {n.id: n.memory.allocated_bytes for n in rt.cluster.nodes}
    assert before == after


def test_many_live_arrays_independent_caches():
    rt = make_rt()

    def kernel(th):
        arrays = []
        for _ in range(5):
            a = yield from th.all_alloc(64, blocksize=8, dtype="u4")
            arrays.append(a)
        yield from th.barrier()
        if th.id == 0:
            for a in arrays:
                yield from th.get(a, 40)   # one miss each
                yield from th.get(a, 41)   # one hit each
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()
    cache = rt.addr_cache(0)
    assert len(cache) == 5                 # one entry per (handle, node)
    assert cache.stats.hits == 5
    assert cache.stats.misses == 5
