"""Unit tests for the Shared Variable Directory."""

import pytest

from repro.runtime import ALL_PARTITION, SVDHandle
from repro.runtime.errors import SVDError
from repro.runtime.svd import (
    ControlBlock,
    HandleAllocator,
    KIND_ARRAY,
    SVDReplica,
)


def cb(handle, nbytes=1024):
    return ControlBlock(handle=handle, kind=KIND_ARRAY, total_bytes=nbytes,
                        nelems=nbytes, elem_size=1, blocksize=64)


def test_handle_validation():
    with pytest.raises(ValueError):
        SVDHandle(partition=-2, index=0)
    with pytest.raises(ValueError):
        SVDHandle(partition=0, index=-1)
    h = SVDHandle(partition=ALL_PARTITION, index=0)
    assert h.is_all


def test_handles_are_universal_keys():
    a = SVDHandle(partition=3, index=7)
    b = SVDHandle(partition=3, index=7)
    assert a == b and hash(a) == hash(b)
    assert len({a, b}) == 1


def test_handle_allocator_sequences_per_partition():
    alloc = HandleAllocator(nthreads=4)
    h0 = alloc.fresh(0)
    h1 = alloc.fresh(0)
    h2 = alloc.fresh(1)
    hall = alloc.fresh(ALL_PARTITION)
    assert (h0.index, h1.index, h2.index, hall.index) == (0, 1, 0, 0)
    with pytest.raises(SVDError):
        alloc.fresh(4)  # only n thread partitions + ALL


def test_replica_add_and_lookup_local():
    rep = SVDReplica(node_id=0, nthreads=4)
    h = SVDHandle(partition=0, index=0)
    rep.add(cb(h), local_base=0x1000, local_bytes=1024)
    assert h in rep
    assert rep.lookup_local(h) == 0x1000
    assert rep.lookups == 1


def test_lookup_local_fails_off_home_node():
    # Figure 2: addresses are held only where data is local.
    rep = SVDReplica(node_id=1, nthreads=4)
    h = SVDHandle(partition=0, index=0)
    rep.add(cb(h))  # no local storage on this node
    with pytest.raises(SVDError, match="home node"):
        rep.lookup_local(h)
    assert rep.control_block(h).total_bytes == 1024  # metadata fine


def test_duplicate_add_rejected():
    rep = SVDReplica(0, 4)
    h = SVDHandle(partition=2, index=0)
    rep.add(cb(h))
    with pytest.raises(SVDError, match="already present"):
        rep.add(cb(h))


def test_use_after_free_detected():
    rep = SVDReplica(0, 4)
    h = SVDHandle(partition=0, index=0)
    rep.add(cb(h), local_base=0x1000)
    rep.remove(h)
    assert h not in rep
    with pytest.raises(SVDError, match="use-after-free"):
        rep.lookup_local(h)


def test_unknown_handle_rejected():
    rep = SVDReplica(0, 4)
    with pytest.raises(SVDError, match="unknown handle"):
        rep.control_block(SVDHandle(partition=0, index=9))


def test_partition_out_of_range_rejected():
    rep = SVDReplica(0, 2)
    h = SVDHandle(partition=3, index=0)
    with pytest.raises(SVDError):
        rep.add(cb(h))


def test_notified_installs_are_counted():
    # Section 2.1 rule 1: independent allocation + notifications.
    rep = SVDReplica(0, 4)
    rep.add(cb(SVDHandle(partition=1, index=0)), notified=True)
    rep.add(cb(SVDHandle(partition=1, index=1)), notified=True)
    assert rep.notifications_received == 2


def test_control_block_validation():
    h = SVDHandle(partition=0, index=0)
    with pytest.raises(SVDError):
        ControlBlock(handle=h, kind="matrix", total_bytes=1)
    with pytest.raises(SVDError):
        ControlBlock(handle=h, kind=KIND_ARRAY, total_bytes=-1)
