"""Regression tests for defects found in code review."""

import pytest

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig


def make_rt(**kw):
    kw.setdefault("threads_per_node", 4)
    kw.setdefault("seed", 1)
    return Runtime(RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=8, **kw))


def test_all_free_waits_for_inflight_relaxed_puts():
    """Review finding: all_free used to tear down the SVD while other
    threads' put tails were still in flight → SVDError on a correct
    program.  The fence+barrier ordering must make this legal."""
    rt = make_rt()

    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 5:
            # Relaxed put to node 0, then straight into the free.
            yield from th.put(arr, 3, 99)
        yield from th.all_free(arr)
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()  # must not raise
    assert rt.metrics.frees == 1
    assert rt.cluster.transport.counters.by_kind.get(
        "put-tail-error", 0) == 0


def test_all_reduce_noncommutative_op_deterministic():
    """Review finding: the fold ran in arrival order, so cached and
    uncached runs disagreed for non-commutative ops.  It must fold in
    thread-id order regardless of timing."""
    def run_mode(cache_enabled):
        rt = make_rt(cache_enabled=cache_enabled)

        def kernel(th):
            arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
            yield from th.barrier()
            # Stagger arrivals differently per configuration.
            yield from th.get(arr, (th.id * 13 + 40) % 64)
            r = yield from th.all_reduce(th.id + 1,
                                         op=lambda a, b: a * 10 + b)
            return r

        procs = rt.spawn(kernel)
        rt.run()
        return {p.value for p in procs}

    on = run_mode(True)
    off = run_mode(False)
    assert on == off
    assert len(on) == 1
    assert on.pop() == int("12345678")


def test_stale_piggyback_ack_does_not_resurrect_freed_handle():
    """Review finding: a put's address-carrying ACK landing after
    all_free could re-insert a cache entry for the freed object."""
    rt = make_rt()

    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            yield from th.put(arr, 40, 7)   # AM put, ack piggybacks
        yield from th.all_free(arr)
        yield from th.barrier()
        yield from th.compute(50.0)         # let any stray acks land
        yield from th.barrier()
        return arr.handle

    procs = rt.spawn(kernel)
    rt.run()
    handle = procs[0].value
    for node in rt.cluster.nodes:
        for (h, _n) in rt.addr_cache(node.id).entries():
            assert h != handle, "stale entry resurrected after free"


def test_credit_exhaustion_with_busy_target_does_not_deadlock():
    """Review finding: reply credits acquired under handler_cpu could
    deadlock two nodes exchanging eager traffic.  With one credit and
    bidirectional gets+puts, the run must still complete."""
    from dataclasses import replace
    machine = replace(
        GM_MARENOSTRUM,
        transport=GM_MARENOSTRUM.transport.with_overrides(
            eager_credits=1))
    rt = Runtime(RuntimeConfig(machine=machine, nthreads=8,
                               threads_per_node=4, seed=2))

    def kernel(th):
        arr = yield from th.all_alloc(128, blocksize=8, dtype="u4")
        yield from th.barrier()
        # Everyone hammers the *other* node with gets and puts.
        other = (th.id + 4) % 8
        for k in range(12):
            yield from th.put(arr, (other * 8 + k % 8) % 128, k)
            v = yield from th.get(arr, (other * 8 + (k + 1) % 8) % 128)
            _ = v
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run(max_events=2_000_000)  # completes; deadlock would hang/drain
