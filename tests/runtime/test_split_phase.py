"""Split-phase (non-blocking) communication tests."""

import numpy as np
import pytest

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig


def make_rt(**kw):
    kw.setdefault("threads_per_node", 4)
    kw.setdefault("seed", 1)
    return Runtime(RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=8, **kw))


def test_get_nb_returns_value_via_handle():
    rt = make_rt()

    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        if th.id == 0:
            arr.data[:] = np.arange(64, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            h = th.get_nb(arr, 40)
            v = yield h
            assert v[0] == 40
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()


def test_pipelined_gets_overlap_roundtrips():
    """Eight concurrent remote GETs must complete far faster than
    eight serialized ones (latency overlap is the whole point)."""
    def run(pipelined):
        rt = make_rt()
        marks = {}

        def kernel(th):
            arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
            yield from th.barrier()
            if th.id == 0:
                t0 = rt.sim.now
                if pipelined:
                    handles = [th.get_nb(arr, 40 + k % 8)
                               for k in range(8)]
                    yield from th.wait_all(handles)
                else:
                    for k in range(8):
                        yield from th.get(arr, 40 + k % 8)
                marks["dt"] = rt.sim.now - t0
            yield from th.barrier()

        rt.spawn(kernel)
        rt.run()
        return marks["dt"]

    serial = run(False)
    overlapped = run(True)
    assert overlapped < 0.6 * serial


def test_wait_all_preserves_order():
    rt = make_rt()

    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        if th.id == 0:
            arr.data[:] = np.arange(64, dtype="u4") * 2
        yield from th.barrier()
        handles = [th.get_nb(arr, i) for i in (40, 8, 56, 1)]
        values = yield from th.wait_all(handles)
        assert [v[0] for v in values] == [80, 16, 112, 2]
        yield from th.barrier()
        empty = yield from th.wait_all([])
        assert empty == []

    rt.spawn(kernel)
    rt.run()


def test_gather_returns_input_order_and_pipelines():
    rt = make_rt()

    def kernel(th):
        arr = yield from th.all_alloc(128, blocksize=8, dtype="u8")
        if th.id == 0:
            arr.data[:] = np.arange(128, dtype="u8") ** 2
        yield from th.barrier()
        if th.id == 0:
            idxs = [(7 * k + 3) % 128 for k in range(24)]
            vals = yield from th.gather(arr, idxs, width=6)
            assert vals == [i * i for i in idxs]
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()


def test_put_nb_tracked_by_fence():
    rt = make_rt()

    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            h = th.put_nb(arr, 40, 9)
            yield h            # local completion
            yield from th.fence()
            v = yield from th.get(arr, 40)
            assert v == 9
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()


def test_split_phase_functional_equivalence():
    def run_mode(cache_enabled):
        rt = make_rt(cache_enabled=cache_enabled)
        out = {}

        def kernel(th):
            arr = yield from th.all_alloc(64, blocksize=8, dtype="u8")
            if th.id == 0:
                arr.data[:] = np.arange(64, dtype="u8") + 5
            yield from th.barrier()
            vals = yield from th.gather(
                arr, [(th.id * 11 + k) % 64 for k in range(10)])
            out.setdefault("sums", []).append(sum(int(v) for v in vals))
            yield from th.barrier()

        rt.spawn(kernel)
        rt.run()
        return sorted(out["sums"])

    assert run_mode(True) == run_mode(False)
