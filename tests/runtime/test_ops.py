"""Integration tests for GET/PUT through the full stack."""

import numpy as np
import pytest

from repro.core.piggyback import PiggybackConfig, PiggybackMode
from repro.network import GM_MARENOSTRUM, LAPI_POWER5
from repro.runtime import Runtime, RuntimeConfig


def run_kernel(kernel, nthreads=8, tpn=4, machine=GM_MARENOSTRUM, **kw):
    cfg = RuntimeConfig(machine=machine, nthreads=nthreads,
                        threads_per_node=tpn, **kw)
    rt = Runtime(cfg)
    rt.spawn(kernel)
    return rt, rt.run()


def test_get_reads_remote_value():
    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        if th.id == 5:                      # node 1
            yield from th.put(arr, 3, 1234) # element of thread 0, node 0
        yield from th.barrier()
        v = yield from th.get(arr, 3)
        yield from th.barrier()
        assert v == 1234

    run_kernel(kernel)


def test_first_remote_get_misses_then_hits():
    rt_holder = {}

    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            yield from th.get(arr, 40)      # thread 5 → node 1: miss
            yield from th.get(arr, 41)      # same (handle, node): hit
        yield from th.barrier()

    rt, res = run_kernel(kernel)
    cache = rt.addr_cache(0)
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1
    assert rt.metrics.am_gets == 1
    assert rt.metrics.rdma_gets == 1


def test_cache_disabled_never_uses_rdma():
    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            for i in range(40, 48):
                yield from th.get(arr, i)
        yield from th.barrier()

    rt, res = run_kernel(kernel, cache_enabled=False)
    assert rt.metrics.rdma_gets == 0
    assert rt.metrics.am_gets == 8
    assert res.cache_stats.accesses == 0


def test_same_node_access_uses_shared_memory():
    # Section 4.6: threads on the same blade communicate through
    # shared memory; no network, no cache involvement.
    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            yield from th.get(arr, 10)  # thread 1 — same node
        yield from th.barrier()

    rt, res = run_kernel(kernel)
    assert rt.metrics.get_shm.n == 1
    assert rt.metrics.get_remote.n == 0
    assert res.cache_stats.accesses == 0


def test_local_access_cheapest():
    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            yield from th.get(arr, 0)    # own element
            yield from th.get(arr, 10)   # same node
            yield from th.get(arr, 40)   # remote
        yield from th.barrier()

    rt, _ = run_kernel(kernel)
    m = rt.metrics
    assert m.get_local.mean < m.get_shm.mean < m.get_remote.mean


def test_target_pins_object_on_first_remote_touch():
    def kernel(th):
        arr = yield from th.all_alloc(1024, blocksize=128, dtype="u1")
        yield from th.barrier()
        if th.id == 0:
            yield from th.get(arr, 600)  # element on node 1
        yield from th.barrier()

    rt, _ = run_kernel(kernel)
    table = rt.pinned_table(1)
    assert len(table) >= 1
    assert table.pins.pinned_bytes > 0


def test_cached_get_is_faster_than_uncached_gm():
    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            for _ in range(20):
                yield from th.get(arr, 40)
        yield from th.barrier()

    rt_on, res_on = run_kernel(kernel, cache_enabled=True)
    rt_off, res_off = run_kernel(kernel, cache_enabled=False)
    assert (rt_on.metrics.get_remote.mean
            < rt_off.metrics.get_remote.mean)


def test_put_applies_value_after_fence():
    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u8")
        yield from th.barrier()
        if th.id == 0:
            yield from th.put(arr, 40, 777)   # remote put
            yield from th.fence()
            v = yield from th.get(arr, 40)
            assert v == 777
        yield from th.barrier()

    run_kernel(kernel)


def test_rdma_put_disabled_on_lapi_by_default():
    # Section 4.3: "we disabled the address cache for the PUT
    # operations in LAPI".
    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            yield from th.get(arr, 40)        # seed the cache
            for i in range(8):
                yield from th.put(arr, 40 + i % 8, i)
        yield from th.barrier()

    rt, _ = run_kernel(kernel, nthreads=8, tpn=2, machine=LAPI_POWER5)
    assert rt.metrics.rdma_puts == 0
    assert rt.metrics.am_puts == 8

    rt2, _ = run_kernel(kernel, nthreads=8, tpn=2, machine=LAPI_POWER5,
                        use_rdma_put=True)
    assert rt2.metrics.rdma_puts > 0


def test_rdma_put_used_on_gm_after_cache_seeded():
    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            yield from th.get(arr, 40)
            yield from th.put(arr, 41, 5)
        yield from th.barrier()

    rt, _ = run_kernel(kernel)
    assert rt.metrics.rdma_puts == 1


def test_memget_bulk_roundtrip():
    def kernel(th):
        arr = yield from th.all_alloc(256, blocksize=32, dtype="u4")
        if th.id == 7:
            yield from th.memput(arr, 32, np.arange(16, dtype="u4"))
        yield from th.barrier()
        chunk = yield from th.memget(arr, 32, 16)
        assert list(chunk) == list(range(16))
        yield from th.barrier()

    run_kernel(kernel)


def test_functional_equivalence_cached_vs_uncached():
    """The core validity property: the cache changes timing only."""
    def kernel(th):
        arr = yield from th.all_alloc(128, blocksize=4, dtype="i8")
        yield from th.barrier()
        rng_idx = [(th.id * 37 + k * 11) % 128 for k in range(12)]
        acc = 0
        for i in rng_idx:
            v = yield from th.get(arr, i)
            acc += int(v)
            yield from th.put(arr, (i + 1) % 128, th.id * 1000 + i)
        yield from th.barrier()
        total = 0
        for i in range(128):
            total += int((yield from th.get(arr, i)))
        yield from th.barrier()
        return total

    def final_state(cache_enabled):
        cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=8,
                            threads_per_node=4,
                            cache_enabled=cache_enabled, seed=3)
        rt = Runtime(cfg)
        procs = rt.spawn(kernel)
        rt.run()
        return [p.value for p in procs]

    assert final_state(True) == final_state(False)


def test_explicit_piggyback_mode_works_but_slower():
    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            for i in range(40, 44):
                yield from th.get(arr, i)
        yield from th.barrier()

    rt_data, res_data = run_kernel(kernel)
    rt_expl, res_expl = run_kernel(
        kernel,
        piggyback=PiggybackConfig(mode=PiggybackMode.EXPLICIT))
    # Both end up caching; the explicit fetch pays an extra round trip
    # on the miss.
    assert rt_expl.addr_cache(0).stats.hits >= 1
    assert (rt_expl.metrics.get_remote.max
            > rt_data.metrics.get_remote.max)


def test_disabled_piggyback_never_populates_cache():
    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            for i in range(40, 48):
                yield from th.get(arr, i)
        yield from th.barrier()

    rt, _ = run_kernel(
        kernel, piggyback=PiggybackConfig(mode=PiggybackMode.DISABLED))
    assert rt.metrics.rdma_gets == 0
    assert len(rt.addr_cache(0)) == 0
