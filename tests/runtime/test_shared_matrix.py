"""Tests for multiblocked (2-D tiled) shared arrays."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig
from repro.runtime.errors import LayoutError
from repro.runtime.shared_matrix import SharedMatrix


def make_rt(nthreads=8, **kw):
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=nthreads,
                        threads_per_node=4, **kw)
    return Runtime(cfg)


def alloc_matrix(rt, rows=16, cols=16, tr=4, tc=4, dtype="f8"):
    out = {}

    def kernel(th):
        m = yield from th.all_alloc_matrix(rows, cols, tr, tc, dtype)
        out["m"] = m
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()
    return out["m"]


def test_tile_round_robin_ownership():
    rt = make_rt()
    m = alloc_matrix(rt)  # 4x4 grid of tiles over 8 threads
    # Tiles in row-major order -> threads 0..7 then wrap.
    assert m.owner_of(0, 0) == 0     # tile (0,0)
    assert m.owner_of(0, 4) == 1     # tile (0,1)
    assert m.owner_of(0, 15) == 3    # tile (0,3)
    assert m.owner_of(4, 0) == 4     # tile (1,0)
    assert m.owner_of(8, 0) == 0     # tile (2,0) wraps


def test_linear_rc_roundtrip():
    rt = make_rt()
    m = alloc_matrix(rt, rows=12, cols=8, tr=3, tc=4)
    for r in range(12):
        for c in range(8):
            assert m.rc(m.linear(r, c)) == (r, c)


def test_dense_roundtrip():
    rt = make_rt()
    m = alloc_matrix(rt, rows=8, cols=8, tr=2, tc=4)
    dense = np.arange(64, dtype="f8").reshape(8, 8)
    m.from_dense(dense)
    assert np.array_equal(m.to_dense(), dense)


def test_shape_validation():
    rt = make_rt()
    from repro.runtime.handle import SVDHandle
    h = SVDHandle(partition=-1, index=77)
    with pytest.raises(LayoutError):
        SharedMatrix(rt, h, 10, 10, 3, 3, np.dtype("f8"))  # not divisible
    with pytest.raises(LayoutError):
        SharedMatrix(rt, h, 0, 10, 1, 1, np.dtype("f8"))
    with pytest.raises(LayoutError):
        SharedMatrix(rt, h, 10, 10, 0, 5, np.dtype("f8"))


def test_out_of_range_rejected():
    rt = make_rt()
    m = alloc_matrix(rt)
    with pytest.raises(LayoutError):
        m.linear(16, 0)
    with pytest.raises(LayoutError):
        m.linear(0, -1)


def test_row_segment_must_stay_in_tile():
    rt = make_rt()
    m = alloc_matrix(rt, rows=8, cols=16, tr=4, tc=4)
    start, count = m.row_segment(1, 4, 4)
    assert count == 4
    with pytest.raises(LayoutError):
        m.row_segment(1, 2, 4)   # spans tiles (c 2..5)


def test_get_put_rc_through_the_stack():
    rt = make_rt()

    def kernel(th):
        m = yield from th.all_alloc_matrix(16, 16, 4, 4, dtype="f8")
        yield from th.barrier()
        if th.id == 0:
            yield from th.put_rc(m, 9, 13, 3.25)   # remote tile
            yield from th.fence()
            v = yield from th.get_rc(m, 9, 13)
            assert v == 3.25
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()


def test_remote_tile_access_uses_cache():
    rt = make_rt()

    def kernel(th):
        m = yield from th.all_alloc_matrix(16, 16, 4, 4, dtype="f8")
        yield from th.barrier()
        if th.id == 0:
            for c in range(4):
                yield from th.get_rc(m, 4, c)   # tile (1,0) -> thread 4
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()
    assert rt.metrics.rdma_gets == 3   # first misses, rest hit
    assert rt.metrics.am_gets == 1


def test_memget_row_moves_a_tile_row():
    rt = make_rt()

    def kernel(th):
        m = yield from th.all_alloc_matrix(8, 8, 4, 4, dtype="f8")
        if th.id == 0:
            m.from_dense(np.arange(64, dtype="f8").reshape(8, 8))
        yield from th.barrier()
        row = yield from th.memget_row(m, 5, 4, 4)
        assert list(row) == [44.0, 45.0, 46.0, 47.0]
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()


def test_matrix_transpose_functional_equivalence():
    """A tiled transpose kernel: every thread transposes the tiles it
    owns, reading from a source matrix — cached and uncached runs must
    produce the same dense result."""
    def run(cache_enabled):
        rt = make_rt(cache_enabled=cache_enabled, seed=5)
        holder = {}

        def kernel(th):
            a = yield from th.all_alloc_matrix(8, 8, 2, 2, dtype="f8")
            b = yield from th.all_alloc_matrix(8, 8, 2, 2, dtype="f8")
            if th.id == 0:
                a.from_dense(np.arange(64, dtype="f8").reshape(8, 8))
                holder["b"] = b
            yield from th.barrier()
            for tile in range(16):
                if tile % th.nthreads != th.id:
                    continue
                ti, tj = divmod(tile, 4)
                for dr in range(2):
                    for dc in range(2):
                        r, c = ti * 2 + dr, tj * 2 + dc
                        v = yield from th.get_rc(a, c, r)
                        yield from th.put_rc(b, r, c, v)
            yield from th.barrier()
            return None

        rt.spawn(kernel)
        rt.run()
        return holder["b"].to_dense()

    dense_on = run(True)
    dense_off = run(False)
    expect = np.arange(64, dtype="f8").reshape(8, 8).T
    assert np.array_equal(dense_on, dense_off)
    assert np.array_equal(dense_on, expect)


@settings(max_examples=30, deadline=None)
@given(
    tiles_r=st.integers(1, 4), tiles_c=st.integers(1, 4),
    tr=st.integers(1, 4), tc=st.integers(1, 4),
)
def test_property_every_element_has_exactly_one_home(tiles_r, tiles_c,
                                                     tr, tc):
    rt = make_rt(nthreads=3)
    m = alloc_matrix(rt, rows=tiles_r * tr, cols=tiles_c * tc,
                     tr=tr, tc=tc)
    seen = {}
    for r in range(m.rows):
        for c in range(m.cols):
            lin = m.linear(r, c)
            assert lin not in seen, "linearization must be injective"
            seen[lin] = (r, c)
            assert 0 <= m.owner_of(r, c) < 3
    assert len(seen) == m.rows * m.cols
