"""Unit + property tests for pointer-to-shared arithmetic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import BlockCyclicLayout, PointerToShared
from repro.runtime.errors import LayoutError


def lay(nelems=24, blocksize=4, nthreads=3, elem_size=8):
    return BlockCyclicLayout(nelems=nelems, elem_size=elem_size,
                             blocksize=blocksize, nthreads=nthreads)


def test_from_index_decomposition():
    p = PointerToShared.from_index(lay(), 13)
    # 13 // 4 = block 3 → thread 0, phase 1, course 1.
    assert p.thread == 0
    assert p.phase == 1
    assert p.course == 1
    assert p.to_index() == 13


def test_intrinsics():
    p = PointerToShared.from_index(lay(), 6)
    assert p.threadof() == lay().thread_of(6)
    assert p.phaseof() == lay().phase_of(6)


def test_increment_walks_global_layout_order():
    layout = lay()
    p = PointerToShared.from_index(layout, 0)
    seen = [p.to_index()]
    for _ in range(layout.nelems - 1):
        p = p + 1
        seen.append(p.to_index())
    assert seen == list(range(layout.nelems))


def test_pointer_difference():
    layout = lay()
    a = PointerToShared.from_index(layout, 20)
    b = PointerToShared.from_index(layout, 5)
    assert a - b == 15
    assert b - a == -15


def test_difference_across_arrays_rejected():
    a = PointerToShared.from_index(lay(), 0)
    b = PointerToShared.from_index(lay(nelems=25), 0)
    with pytest.raises(LayoutError):
        _ = a - b


def test_local_offset_bytes_matches_layout():
    layout = lay()
    for i in range(layout.nelems):
        p = PointerToShared.from_index(layout, i)
        assert p.local_offset_bytes() == layout.local_offset_bytes(i)


def test_out_of_range_from_index():
    with pytest.raises(LayoutError):
        PointerToShared.from_index(lay(), 24)


def test_past_the_end_pointer_detected():
    layout = lay(nelems=10, blocksize=4, nthreads=3)
    p = PointerToShared(layout=layout, thread=2, phase=3, course=0)
    with pytest.raises(LayoutError):
        p.to_index()


@settings(max_examples=100, deadline=None)
@given(
    nelems=st.integers(2, 300),
    blocksize=st.integers(1, 32),
    nthreads=st.integers(1, 8),
    data=st.data(),
)
def test_property_add_is_index_addition(nelems, blocksize, nthreads, data):
    layout = BlockCyclicLayout(nelems=nelems, elem_size=4,
                               blocksize=blocksize, nthreads=nthreads)
    i = data.draw(st.integers(0, nelems - 1), label="i")
    k = data.draw(st.integers(-i, nelems - 1 - i), label="k")
    p = PointerToShared.from_index(layout, i)
    assert (p + k).to_index() == i + k
