"""Tests for barrier, broadcast, allocation collectives, and locks."""

import pytest

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig
from repro.runtime.errors import SVDError, UPCRuntimeError


def make_rt(nthreads=8, tpn=4, **kw):
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=nthreads,
                        threads_per_node=tpn, **kw)
    return Runtime(cfg)


def test_barrier_synchronizes_all_threads():
    rt = make_rt()
    after = []

    def kernel(th):
        yield from th.compute(float(th.id) * 10.0)  # staggered arrival
        yield from th.barrier()
        after.append(rt.sim.now)

    rt.spawn(kernel)
    rt.run()
    assert len(after) == 8
    assert max(after) - min(after) < 1.0  # everyone released together
    assert max(after) >= 70.0             # waited for the slowest


def test_barrier_generations_count():
    rt = make_rt(nthreads=4, tpn=2)

    def kernel(th):
        for _ in range(5):
            yield from th.barrier()

    rt.spawn(kernel)
    res = rt.run()
    assert res.metrics.barriers == 5
    assert rt.barrier_mgr.generation == 5


def test_all_alloc_returns_same_object_everywhere():
    rt = make_rt()
    got = []

    def kernel(th):
        arr = yield from th.all_alloc(128, blocksize=16, dtype="u4")
        got.append(arr)
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()
    assert len({id(a) for a in got}) == 1
    assert got[0].handle.is_all


def test_global_alloc_notifies_other_replicas():
    rt = make_rt()
    out = {}

    def kernel(th):
        if th.id == 2:
            arr = yield from th.global_alloc(128, blocksize=16, dtype="u4")
            out["arr"] = arr
        yield from th.barrier()
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()
    arr = out["arr"]
    assert arr.handle.partition == 2      # allocator's own partition
    # Every replica knows the control block; notified installs counted.
    for node in rt.cluster.nodes:
        assert arr.handle in rt.svd(node.id)
    assert rt.svd(1).notifications_received >= 1


def test_all_free_invalidates_remote_caches_eagerly():
    rt = make_rt()

    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            yield from th.get(arr, 40)   # populate node 0's cache
        yield from th.barrier()
        yield from th.all_free(arr)
        yield from th.barrier()

    rt.spawn(kernel)
    res = rt.run()
    assert len(rt.addr_cache(0)) == 0
    assert res.cache_stats.invalidations >= 1
    assert rt.metrics.frees == 1


def test_freed_array_lookup_raises():
    rt = make_rt()

    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.all_free(arr)
        yield from th.barrier()
        if th.id == 0:
            yield from th.get(arr, 40)  # use-after-free

    rt.spawn(kernel)
    with pytest.raises(SVDError):
        rt.run()


def test_lock_mutual_exclusion():
    rt = make_rt(nthreads=4, tpn=2)
    lock = rt.alloc_lock(owner_thread=0)
    critical = []

    def kernel(th):
        yield from th.lock(lock)
        critical.append(("in", th.id, rt.sim.now))
        yield from th.compute(5.0)
        critical.append(("out", th.id, rt.sim.now))
        yield from th.unlock(lock)

    rt.spawn(kernel)
    rt.run()
    # Critical sections never overlap.
    intervals = []
    for i in range(0, len(critical), 2):
        enter, leave = critical[i], critical[i + 1]
        assert enter[0] == "in" and leave[0] == "out"
        assert enter[1] == leave[1]
        intervals.append((enter[2], leave[2]))
    intervals.sort()
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert e1 <= s2
    assert lock.acquisitions == 4
    assert not lock.locked


def test_unlock_by_non_holder_rejected():
    rt = make_rt(nthreads=2, tpn=2)
    lock = rt.alloc_lock()

    def kernel(th):
        if th.id == 0:
            yield from th.lock(lock)
        yield from th.barrier()
        if th.id == 1:
            yield from th.unlock(lock)  # not the holder!

    rt.spawn(kernel)
    with pytest.raises(RuntimeError, match="unlocking lock held by"):
        rt.run()


def test_shared_scalar_allocation():
    rt = make_rt()
    sc = rt.alloc_scalar(owner_thread=5, dtype="f8")
    assert sc.home_node == rt.node_of_thread(5)
    sc.write(3.5)
    assert sc.read() == 3.5
    node, vaddr = sc.addr()
    assert rt.cluster.node(node).memory.owns(vaddr)


def test_run_without_spawn_rejected():
    rt = make_rt()
    with pytest.raises(UPCRuntimeError, match="nothing to do"):
        rt.run()


def test_config_validation():
    with pytest.raises(UPCRuntimeError):
        RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=0)
    with pytest.raises(UPCRuntimeError):
        RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=4,
                      threads_per_node=0)


def test_thread_node_mapping():
    rt = make_rt(nthreads=10, tpn=4)
    assert rt.cluster.nnodes == 3
    assert rt.node_of_thread(0) == 0
    assert rt.node_of_thread(7) == 1
    assert rt.node_of_thread(9) == 2
    assert rt.threads_on_node(2) == 2  # ragged tail
    assert rt.first_thread_of_node(1) == 4
