"""Tests for the upc_forall-style affinity iteration."""

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig


def make_rt(nthreads=8):
    return Runtime(RuntimeConfig(machine=GM_MARENOSTRUM,
                                 nthreads=nthreads, threads_per_node=4))


def test_forall_round_robin_partitions_indices():
    rt = make_rt(4)
    seen = {}

    def kernel(th):
        seen[th.id] = list(th.forall(10))
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()
    assert seen[0] == [0, 4, 8]
    assert seen[1] == [1, 5, 9]
    all_indices = sorted(i for idxs in seen.values() for i in idxs)
    assert all_indices == list(range(10))


def test_forall_with_array_affinity_yields_only_local():
    rt = make_rt()
    counts = {}

    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        mine = list(th.forall(64, arr))
        counts[th.id] = len(mine)
        for i in mine:
            v = yield from th.get(arr, i)   # must all be local
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()
    assert sum(counts.values()) == 64
    assert rt.metrics.remote_ops == 0
    assert rt.metrics.get_shm.n == 0


def test_forall_start_step():
    rt = make_rt(2)
    seen = {}

    def kernel(th):
        seen[th.id] = list(th.forall(10, start=1, step=2))
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()
    # Indices 1,3,5,7,9 split round-robin over 2 threads by value.
    assert sorted(seen[0] + seen[1]) == [1, 3, 5, 7, 9]
