"""Unit tests for SharedArray storage and addressing."""

import numpy as np
import pytest

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig
from repro.runtime.errors import LayoutError


def make_rt(nthreads=8, tpn=4, **kw):
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=nthreads,
                        threads_per_node=tpn, **kw)
    return Runtime(cfg)


def alloc(rt, nelems=256, blocksize=16, dtype="u4"):
    out = {}

    def kernel(th):
        arr = yield from th.all_alloc(nelems, blocksize=blocksize,
                                      dtype=dtype)
        out["arr"] = arr
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()
    return out["arr"]


def test_arena_per_node_with_different_bases():
    rt = make_rt()
    arr = alloc(rt)
    assert set(arr.node_base) == {0, 1}
    assert arr.node_base[0] != arr.node_base[1]  # Figure 2's property


def test_owner_thread_and_node():
    rt = make_rt()
    arr = alloc(rt, nelems=256, blocksize=16)
    # Block 0 → thread 0 (node 0); block 4 → thread 4 (node 1).
    assert arr.owner_thread(0) == 0 and arr.owner_node(0) == 0
    assert arr.owner_thread(4 * 16) == 4 and arr.owner_node(4 * 16) == 1


def test_arena_offset_is_layout_arithmetic():
    rt = make_rt()
    arr = alloc(rt, nelems=256, blocksize=16, dtype="u4")
    # Element 5*16 (block 5 → thread 5, node 1, slot 1, first block row).
    idx = 5 * 16
    expect = 1 * arr.layout.thread_chunk_bytes + 0
    assert arr.arena_offset(idx) == expect
    node, vaddr = arr.addr_of(idx)
    assert node == 1
    assert vaddr == arr.node_base[1] + expect


def test_addresses_stay_inside_arena():
    rt = make_rt(nthreads=6, tpn=4)
    arr = alloc(rt, nelems=300, blocksize=7, dtype="u8")
    for idx in range(0, 300, 13):
        node, vaddr = arr.addr_of(idx)
        base = arr.node_base[node]
        assert base <= vaddr < base + arr.node_bytes[node]


def test_data_plane_read_write_roundtrip():
    rt = make_rt()
    arr = alloc(rt, dtype="u4")
    arr.write(10, np.arange(5, dtype="u4"))
    got = arr.read(10, 5)
    assert list(got) == [0, 1, 2, 3, 4]
    got[0] = 99  # read returns a copy
    assert arr.read(10, 1)[0] == 0


def test_span_validation():
    rt = make_rt()
    arr = alloc(rt, nelems=64, blocksize=8)
    with pytest.raises(LayoutError):
        arr.read(60, 5)
    with pytest.raises(LayoutError):
        arr.read(0, 0)


def test_dtype_must_match_layout():
    rt = make_rt()
    with pytest.raises(LayoutError):
        # total mismatch between layout elem_size and dtype.
        from repro.runtime import BlockCyclicLayout, SVDHandle
        from repro.runtime.shared_array import SharedArray
        layout = BlockCyclicLayout(nelems=8, elem_size=2, blocksize=2,
                                   nthreads=8)
        SharedArray(rt, SVDHandle(partition=-1, index=50), layout,
                    np.dtype("u4"))


def test_local_alloc_owned_entirely_by_caller():
    rt = make_rt()
    out = {}

    def kernel(th):
        if th.id == 3:
            arr = yield from th.local_alloc(64, dtype="u2")
            out["arr"] = arr
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()
    arr = out["arr"]
    assert all(arr.owner_thread(i) == 3 for i in range(0, 64, 7))
    assert set(arr.node_base) == {0}  # thread 3 lives on node 0
    assert arr.arena_offset(10) == 10 * 2
