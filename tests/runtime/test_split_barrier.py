"""Split-phase barrier (upc_notify / upc_wait) tests."""

import pytest

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig


def make_rt(nthreads=8, **kw):
    kw.setdefault("threads_per_node", 4)
    kw.setdefault("seed", 1)
    return Runtime(RuntimeConfig(machine=GM_MARENOSTRUM,
                                 nthreads=nthreads, **kw))


def test_notify_wait_synchronizes_like_barrier():
    rt = make_rt()
    after = []

    def kernel(th):
        yield from th.compute(float(th.id))
        yield from th.barrier_notify()
        yield from th.barrier_wait()
        after.append(rt.sim.now)

    rt.spawn(kernel)
    rt.run()
    assert len(after) == 8
    assert max(after) - min(after) < 1.0
    assert rt.metrics.barriers == 1


def test_compute_overlaps_barrier_network_phase():
    """Work placed between notify and wait hides barrier latency: the
    split version must beat barrier-then-compute."""
    def run(split):
        rt = make_rt(nthreads=64, threads_per_node=4)  # 16 nodes

        def kernel(th):
            if split:
                yield from th.barrier_notify()
                yield from th.compute(30.0)   # overlapped
                yield from th.barrier_wait()
            else:
                yield from th.barrier()
                yield from th.compute(30.0)

        rt.spawn(kernel)
        return rt.run().elapsed_us

    assert run(True) < run(False)


def test_double_notify_rejected():
    rt = make_rt(nthreads=2, threads_per_node=2)

    def kernel(th):
        yield from th.barrier_notify()
        yield from th.barrier_notify()

    rt.spawn(kernel)
    with pytest.raises(RuntimeError, match="notify twice"):
        rt.run()


def test_wait_without_notify_rejected():
    rt = make_rt(nthreads=2, threads_per_node=2)

    def kernel(th):
        yield from th.barrier_wait()

    rt.spawn(kernel)
    with pytest.raises(RuntimeError, match="without upc_notify"):
        rt.run()


def test_mixed_split_and_plain_barriers_interleave():
    rt = make_rt(nthreads=4, threads_per_node=2)
    log = []

    def kernel(th):
        yield from th.barrier_notify()
        yield from th.compute(2.0)
        yield from th.barrier_wait()
        log.append(("phase1", th.id))
        yield from th.barrier()
        log.append(("phase2", th.id))

    rt.spawn(kernel)
    rt.run()
    phases = [p for p, _ in log]
    assert phases.index("phase2") >= 4  # all phase1 precede phase2
    assert rt.barrier_mgr.generation == 2
