"""Tests for all_reduce / all_broadcast value collectives."""

import pytest

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig


def make_rt(nthreads=8, **kw):
    kw.setdefault("threads_per_node", 4)
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=nthreads, **kw)
    return Runtime(cfg)


def test_all_reduce_sum():
    rt = make_rt()

    def kernel(th):
        total = yield from th.all_reduce(th.id)
        return total

    procs = rt.spawn(kernel)
    rt.run()
    assert all(p.value == sum(range(8)) for p in procs)


def test_all_reduce_custom_op():
    rt = make_rt()

    def kernel(th):
        biggest = yield from th.all_reduce(th.id * 7 % 5, op=max)
        return biggest

    procs = rt.spawn(kernel)
    rt.run()
    expect = max(t * 7 % 5 for t in range(8))
    assert all(p.value == expect for p in procs)


def test_all_reduce_sequence_of_collectives():
    rt = make_rt(nthreads=4)

    def kernel(th):
        a = yield from th.all_reduce(1)
        b = yield from th.all_reduce(th.id)
        c = yield from th.all_reduce(a + b, op=min)
        return (a, b, c)

    procs = rt.spawn(kernel)
    rt.run()
    assert all(p.value == (4, 6, 10) for p in procs)


def test_all_broadcast_from_thread0():
    rt = make_rt()

    def kernel(th):
        v = yield from th.all_broadcast("the-plan" if th.id == 0 else None)
        return v

    procs = rt.spawn(kernel)
    rt.run()
    assert all(p.value == "the-plan" for p in procs)


def test_collectives_advance_virtual_time():
    rt = make_rt()

    def kernel(th):
        yield from th.all_reduce(1)

    rt.spawn(kernel)
    res = rt.run()
    assert res.elapsed_us > 0


def test_reduce_on_single_thread_runtime():
    rt = make_rt(nthreads=1, threads_per_node=1)

    def kernel(th):
        v = yield from th.all_reduce(42)
        return v

    procs = rt.spawn(kernel)
    rt.run()
    assert procs[0].value == 42
