"""Tests for the BG/L collective network and the runtime report."""

import pytest

from repro.network import BGL_TORUS, GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig


def run_barrier_heavy(machine, nthreads, tpn):
    cfg = RuntimeConfig(machine=machine, nthreads=nthreads,
                        threads_per_node=tpn, seed=1)
    rt = Runtime(cfg)

    def kernel(th):
        for _ in range(10):
            yield from th.barrier()

    rt.spawn(kernel)
    res = rt.run()
    return rt, res


def test_bgl_tree_barrier_is_scale_invariant():
    _, small = run_barrier_heavy(BGL_TORUS, 16, 2)     # 8 nodes
    _, big = run_barrier_heavy(BGL_TORUS, 128, 2)      # 64 nodes
    # The dedicated collective network keeps barrier latency flat.
    assert big.elapsed_us < small.elapsed_us * 1.3


def test_gm_dissemination_barrier_grows_with_scale():
    _, small = run_barrier_heavy(GM_MARENOSTRUM, 16, 4)   # 4 nodes
    _, big = run_barrier_heavy(GM_MARENOSTRUM, 256, 4)    # 64 nodes
    assert big.elapsed_us > small.elapsed_us * 1.5


def test_bgl_barrier_cheaper_than_gm_at_scale():
    _, bgl = run_barrier_heavy(BGL_TORUS, 128, 2)
    _, gm = run_barrier_heavy(GM_MARENOSTRUM, 256, 4)  # same 64 nodes
    assert bgl.elapsed_us < gm.elapsed_us


def test_report_contains_key_sections():
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=8,
                        threads_per_node=4, seed=1)
    rt = Runtime(cfg)

    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            yield from th.get(arr, 40)
            yield from th.get(arr, 41)
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()
    report = rt.report()
    assert "run summary" in report
    assert "hit rate" in report
    assert "node 0" in report
    assert "barriers" in report
    assert "rdma share" in report


def test_metrics_summary_exposes_protocol_and_tail_keys():
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=8,
                        threads_per_node=2, seed=1)
    rt = Runtime(cfg)

    def kernel(th):
        arr = yield from th.all_alloc(256, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            for i in range(120, 140):
                yield from th.get(arr, i)
                yield from th.put(arr, i, arr.dtype.type(i))
            yield from th.memget(arr, 64, 64)
        yield from th.barrier()

    rt.spawn(kernel)
    res = rt.run()
    summary = res.metrics.summary()
    for key in ("rdma_gets", "rdma_puts", "am_gets", "am_puts",
                "bulk_bytes_saved", "remote_get_p50_us",
                "remote_get_p99_us"):
        assert key in summary, key
    m = res.metrics
    # Per-protocol counts must reconcile with the remote totals.
    assert summary["rdma_gets"] + summary["am_gets"] == m.get_remote.n
    assert summary["rdma_puts"] + summary["am_puts"] == m.put_remote.n
    assert m.get_remote.n > 0
    # The digest tracks the same population the mean does.
    assert m.get_remote_digest.count == m.get_remote.n
    assert (summary["remote_get_p50_us"]
            <= summary["remote_get_p99_us"])


def test_report_truncates_many_nodes():
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=48,
                        threads_per_node=4, seed=1)
    rt = Runtime(cfg)

    def kernel(th):
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()
    assert "more nodes" in rt.report()
