"""Unit + property tests for block-cyclic layouts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import BlockCyclicLayout, LayoutError
from repro.runtime.layout import blocked_layout, cyclic_layout


def test_blockcyclic_round_robin_over_blocks():
    lay = BlockCyclicLayout(nelems=12, elem_size=4, blocksize=2, nthreads=3)
    owners = [lay.thread_of(i) for i in range(12)]
    assert owners == [0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2]


def test_phase_and_block():
    lay = BlockCyclicLayout(nelems=10, elem_size=8, blocksize=3, nthreads=2)
    assert lay.phase_of(0) == 0
    assert lay.phase_of(4) == 1
    assert lay.block_of(4) == 1
    assert lay.nblocks == 4


def test_local_index_packs_blocks_contiguously():
    lay = BlockCyclicLayout(nelems=12, elem_size=1, blocksize=2, nthreads=3)
    # Thread 0 owns blocks 0 and 3 → global elements 0,1,6,7.
    assert [lay.local_index(i) for i in (0, 1, 6, 7)] == [0, 1, 2, 3]
    # Thread 1 owns blocks 1 and 4 → elements 2,3,8,9.
    assert [lay.local_index(i) for i in (2, 3, 8, 9)] == [0, 1, 2, 3]


def test_elems_of_thread_sums_to_total():
    lay = BlockCyclicLayout(nelems=103, elem_size=4, blocksize=7, nthreads=5)
    counts = [lay.elems_of_thread(t) for t in range(5)]
    assert sum(counts) == 103


def test_blocked_layout_matches_paper_field_blocking():
    # Field: "a block size of ceil(N/THREADS)" (section 4.4).
    lay = blocked_layout(100, 1, 8)
    assert lay.blocksize == 13
    assert lay.thread_of(0) == 0
    assert lay.thread_of(99) == 99 // 13


def test_cyclic_layout():
    lay = cyclic_layout(10, 4, 3)
    assert [lay.thread_of(i) for i in range(6)] == [0, 1, 2, 0, 1, 2]


def test_contiguous_span_detection():
    lay = BlockCyclicLayout(nelems=20, elem_size=1, blocksize=5, nthreads=2)
    assert lay.contiguous_span(0, 5)
    assert not lay.contiguous_span(3, 5)


def test_bad_parameters_rejected():
    with pytest.raises(LayoutError):
        BlockCyclicLayout(nelems=0, elem_size=1, blocksize=1, nthreads=1)
    with pytest.raises(LayoutError):
        BlockCyclicLayout(nelems=1, elem_size=0, blocksize=1, nthreads=1)
    with pytest.raises(LayoutError):
        BlockCyclicLayout(nelems=1, elem_size=1, blocksize=0, nthreads=1)
    with pytest.raises(LayoutError):
        BlockCyclicLayout(nelems=1, elem_size=1, blocksize=1, nthreads=0)


def test_index_out_of_range_rejected():
    lay = BlockCyclicLayout(nelems=10, elem_size=1, blocksize=2, nthreads=2)
    with pytest.raises(LayoutError):
        lay.thread_of(10)
    with pytest.raises(LayoutError):
        lay.local_index(-1)


@settings(max_examples=100, deadline=None)
@given(
    nelems=st.integers(1, 500),
    blocksize=st.integers(1, 64),
    nthreads=st.integers(1, 16),
    elem_size=st.sampled_from([1, 2, 4, 8]),
)
def test_property_layout_partition_is_exact(nelems, blocksize, nthreads,
                                            elem_size):
    """Every element has exactly one owner; per-thread local indices
    are dense (0..count-1) and elems_of_thread matches."""
    lay = BlockCyclicLayout(nelems=nelems, elem_size=elem_size,
                            blocksize=blocksize, nthreads=nthreads)
    per_thread = {}
    for i in range(nelems):
        t = lay.thread_of(i)
        per_thread.setdefault(t, []).append(lay.local_index(i))
    total = 0
    for t, idxs in per_thread.items():
        assert sorted(idxs) == list(range(len(idxs))), "local indices dense"
        assert lay.elems_of_thread(t) == len(idxs)
        total += len(idxs)
    assert total == nelems
    for t in range(nthreads):
        if t not in per_thread:
            assert lay.elems_of_thread(t) == 0
