"""Bulk-transfer (memget/memput) semantics across block boundaries."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig
from repro.runtime.errors import AffinityError, UPCRuntimeError


def make_rt(**kw):
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=8,
                        threads_per_node=4, **kw)
    return Runtime(cfg)


def run1(kernel, **kw):
    rt = make_rt(**kw)
    rt.spawn(kernel)
    return rt, rt.run()


def test_get_rejects_block_crossing_span():
    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            yield from th.get(arr, 6, 4)  # crosses blocks 0|1

    rt = make_rt()
    rt.spawn(kernel)
    with pytest.raises(AffinityError, match="memget/memput"):
        rt.run()


def test_memget_spanning_blocks_returns_global_order():
    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        if th.id == 0:
            arr.data[:] = np.arange(64, dtype="u4")
        yield from th.barrier()
        chunk = yield from th.memget(arr, 5, 20)  # spans 3 blocks
        assert list(chunk) == list(range(5, 25))
        yield from th.barrier()

    run1(kernel)


def test_memput_spanning_blocks_lands_in_place():
    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 3:
            yield from th.memput(arr, 12, np.arange(100, 120, dtype="u4"))
            yield from th.fence()
        yield from th.barrier()
        got = yield from th.memget(arr, 12, 20)
        assert list(got) == list(range(100, 120))
        yield from th.barrier()

    run1(kernel)


def test_memget_touches_multiple_owner_nodes():
    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            # Blocks 3,4,5 are owned by threads 3 (node 0), 4, 5 (node 1).
            yield from th.memget(arr, 24, 24)
        yield from th.barrier()

    # The bulk engine coalesces the two node-1 blocks (arena-adjacent
    # on their owner) into a single wire message.
    rt, res = run1(kernel)
    assert rt.metrics.get_remote.n == 1   # blocks on node 1, coalesced
    assert rt.metrics.get_shm.n == 1      # block of thread 3
    assert rt.metrics.bulk_coalesced_segments == 1

    # With the engine off the serial path pays one round trip per block.
    rt, res = run1(kernel, bulk_enabled=False)
    assert rt.metrics.get_remote.n == 2
    assert rt.metrics.get_shm.n == 1


def test_memget_zero_span_is_noop_and_negative_rejected():
    # upc_memget(p, q, 0) is a no-op: returns an empty typed array,
    # moves nothing.  Negative counts are still programming errors.
    got = {}

    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        got["empty"] = yield from th.memget(arr, 0, 0)

    rt = make_rt()
    rt.spawn(kernel)
    rt.run()
    assert got["empty"].shape == (0,)
    assert got["empty"].dtype == np.dtype("u4")
    assert rt.metrics.get_remote.n == 0 and rt.metrics.get_shm.n == 0

    def bad(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        yield from th.memget(arr, 0, -3)

    rt = make_rt()
    rt.spawn(bad)
    with pytest.raises(UPCRuntimeError):
        rt.run()


def test_local_alloc_memget_is_single_segment():
    def kernel(th):
        if th.id == 2:
            arr = yield from th.local_alloc(64, dtype="u4")
            arr.data[:] = np.arange(64, dtype="u4")
            got = yield from th.memget(arr, 10, 40)
            assert list(got) == list(range(10, 50))
        yield from th.barrier()

    rt, _ = run1(kernel)
    # All 40 elements moved as one local access.
    assert rt.metrics.get_local.n == 1


@settings(max_examples=12, deadline=None)
@given(
    blocksize=st.integers(1, 16),
    start=st.integers(0, 40),
    count=st.integers(1, 24),
    seed=st.integers(0, 3),
)
def test_property_memget_equals_data_plane(blocksize, start, count, seed):
    """memget over any (blocksize, span) returns exactly the global
    array contents, cached or not."""
    count = min(count, 64 - start)
    results = {}

    def run_mode(cache_enabled):
        def kernel(th):
            arr = yield from th.all_alloc(64, blocksize=blocksize,
                                          dtype="u4")
            if th.id == 0:
                arr.data[:] = np.arange(64, dtype="u4") * 3 + seed
            yield from th.barrier()
            got = yield from th.memget(arr, start, count)
            assert list(got) == [3 * i + seed for i in
                                 range(start, start + count)]
            yield from th.barrier()
            return True

        rt = make_rt(cache_enabled=cache_enabled, seed=seed)
        procs = rt.spawn(kernel)
        res = rt.run()
        return res.elapsed_us

    results["on"] = run_mode(True)
    results["off"] = run_mode(False)
    # With a single access per (handle, node) pair the cache is pure
    # overhead (first-touch pinning + piggyback, no reuse) — it may
    # lose slightly, but never catastrophically.
    assert results["on"] <= results["off"] * 1.25
