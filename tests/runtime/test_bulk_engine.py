"""Pipelined bulk-transfer engine (:mod:`repro.runtime.bulk`).

The contract under test: the engine changes *when* wire messages move,
never *what* data lands — results are bit-identical with the engine on
or off, window 1 with coalescing off degenerates to the serial path,
and relaxed-put tracking still drains at fence/barrier.
"""

import numpy as np
import pytest

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig
from repro.runtime.errors import UPCRuntimeError


def make_rt(**kw):
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=8,
                        threads_per_node=4, **kw)
    return Runtime(cfg)


def run1(kernel, **kw):
    rt = make_rt(**kw)
    rt.spawn(kernel)
    return rt, rt.run()


def seeded_kernel_results(**kw):
    """One kernel exercising memget/memput/gather over many blocks;
    returns everything it read, for cross-configuration comparison."""
    got = {}

    def kernel(th):
        arr = yield from th.all_alloc(256, blocksize=8, dtype="u4")
        if th.id == 0:
            arr.data[:] = np.arange(256, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            # 21-block span: every thread's blocks, both nodes.
            got["wide"] = yield from th.memget(arr, 3, 170)
            yield from th.memput(arr, 40, np.arange(500, 590, dtype="u4"))
            yield from th.fence()
            got["after_put"] = yield from th.memget(arr, 40, 90)
            got["gathered"] = yield from th.gather(
                arr, [7, 250, 13, 131, 64])
            got["gathered_v"] = yield from th.gather(
                arr, [4, 200], nelems=4)
        yield from th.barrier()
        # A different thread observes the put after the barrier.
        if th.id == 5:
            got["observed"] = yield from th.memget(arr, 40, 90)
        yield from th.barrier()

    rt, res = run1(kernel, **kw)
    return got, rt, res


def test_engine_on_off_bit_identical():
    on, _, _ = seeded_kernel_results(bulk_enabled=True)
    off, _, _ = seeded_kernel_results(bulk_enabled=False)
    assert on.keys() == off.keys()
    for key in on:
        a, b = on[key], off[key]
        if isinstance(a, list):
            assert len(a) == len(b)
            for x, y in zip(a, b):
                assert np.array_equal(x, y), key
        else:
            assert a.dtype == b.dtype, key
            assert np.array_equal(a, b), key


def test_many_block_span_values_and_coalescing():
    got = {}

    def kernel(th):
        arr = yield from th.all_alloc(256, blocksize=8, dtype="u4")
        if th.id == 0:
            arr.data[:] = np.arange(256, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            got["chunk"] = yield from th.memget(arr, 0, 256)
        yield from th.barrier()

    rt, _ = run1(kernel)
    assert list(got["chunk"]) == list(range(256))
    m = rt.metrics
    # 32 blocks split into 32 segments; 16 belong to node 1, where the
    # arena packs each of the 4 thread slots' blocks contiguously —
    # one coalesced message per slot region.
    assert m.bulk_segments == 32
    assert m.bulk_messages == 4
    assert m.bulk_coalesced_segments == 12
    assert rt.metrics.get_remote.n == 4


def test_coalesce_cap_splits_messages():
    def kernel(th):
        arr = yield from th.all_alloc(256, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            yield from th.memget(arr, 0, 256)
        yield from th.barrier()

    # Each node-1 thread-slot region is 4 blocks * 32 B = 128 B; a
    # 64 B cap halves every slot message.
    rt, _ = run1(kernel, bulk_max_coalesce_bytes=64)
    assert rt.metrics.bulk_messages == 8
    # Coalescing disabled entirely: one message per remote segment.
    rt, _ = run1(kernel, bulk_max_coalesce_bytes=0)
    assert rt.metrics.bulk_messages == 16
    assert rt.metrics.bulk_coalesced_segments == 0


def test_window_one_no_coalesce_matches_serial_timing():
    def kernel(th):
        arr = yield from th.all_alloc(256, blocksize=8, dtype="u4")
        if th.id == 0:
            arr.data[:] = np.arange(256, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            yield from th.memget(arr, 3, 170)
            yield from th.memput(arr, 40, np.arange(500, 560, dtype="u4"))
            yield from th.fence()
        yield from th.barrier()

    _, serial = run1(kernel, bulk_enabled=False)
    _, degenerate = run1(kernel, bulk_max_inflight=1,
                         bulk_max_coalesce_bytes=0)
    # One message per segment, one in flight at a time: the engine
    # reproduces the serial path's virtual time exactly.
    assert degenerate.elapsed_us == pytest.approx(serial.elapsed_us)


def test_pipeline_depth_reaches_window():
    def kernel(th):
        arr = yield from th.all_alloc(256, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            yield from th.memget(arr, 0, 256)
        yield from th.barrier()

    rt, _ = run1(kernel, bulk_max_coalesce_bytes=0, bulk_max_inflight=4)
    assert rt.metrics.bulk_depth.max == 4
    rt, _ = run1(kernel, bulk_max_coalesce_bytes=0, bulk_max_inflight=1)
    assert rt.metrics.bulk_depth.max == 1


def test_fence_drains_inflight_bulk_puts():
    def kernel(th):
        arr = yield from th.all_alloc(256, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            # 12 blocks' worth of puts left in flight, then fenced.
            yield from th.memput(arr, 60, np.arange(1000, 1100,
                                                    dtype="u4"))
            yield from th.fence()
        yield from th.barrier()
        if th.id == 6:
            got = yield from th.memget(arr, 60, 100)
            assert list(got) == list(range(1000, 1100))
        yield from th.barrier()

    run1(kernel, bulk_max_coalesce_bytes=0)   # maximise in-flight puts


def test_barrier_drains_inflight_bulk_puts():
    def kernel(th):
        arr = yield from th.all_alloc(256, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            yield from th.memput(arr, 0, np.arange(256, dtype="u4") * 3)
        yield from th.barrier()   # no explicit fence: barrier implies it
        got = yield from th.memget(arr, th.id * 8, 8)
        assert list(got) == [3 * (th.id * 8 + i) for i in range(8)]
        yield from th.barrier()

    run1(kernel, bulk_max_coalesce_bytes=0)


def test_gather_scalar_vector_contract():
    """Regression for the old ``gather`` bug: it returned ``v[0]`` even
    for multi-element requests, silently dropping the tail."""
    got = {}

    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        if th.id == 0:
            arr.data[:] = np.arange(64, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            got["scalars"] = yield from th.gather(arr, [3, 50, 7, 33])
            got["vectors"] = yield from th.gather(arr, [3, 50, 20],
                                                  nelems=4)
        yield from th.barrier()

    run1(kernel)
    # nelems=1 (default): plain python scalars, in input order.
    assert got["scalars"] == [3, 50, 7, 33]
    assert not isinstance(got["scalars"][0], np.ndarray)
    # nelems>1: one array per index, full width, in input order.
    assert [list(v) for v in got["vectors"]] == [
        [3, 4, 5, 6], [50, 51, 52, 53], [20, 21, 22, 23]]


def test_gather_contract_matches_with_engine_off():
    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        if th.id == 0:
            arr.data[:] = np.arange(64, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            s = yield from th.gather(arr, [9, 41])
            v = yield from th.gather(arr, [9, 41], nelems=3)
            assert s == [9, 41]
            assert [list(x) for x in v] == [[9, 10, 11], [41, 42, 43]]
        yield from th.barrier()

    run1(kernel, bulk_enabled=False)


def test_bulk_config_validation():
    with pytest.raises(UPCRuntimeError):
        make_rt(bulk_max_inflight=0)
    with pytest.raises(UPCRuntimeError):
        make_rt(bulk_max_coalesce_bytes=-1)


@pytest.mark.parametrize("bulk", [True, False])
def test_gather_nelems_zero_is_a_noop(bulk):
    """upc_memget(p, q, 0) is a no-op, so a vector gather with
    nelems=0 yields one empty (but correctly-typed) array per index
    and moves no data — on the pipelined and serial paths alike."""
    got = {}

    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        if th.id == 0:
            arr.data[:] = np.arange(64, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            got["empty"] = yield from th.gather(arr, [3, 40, 63],
                                               nelems=0)
            got["memget0"] = yield from th.memget(arr, 17, 0)
        yield from th.barrier()

    run1(kernel, bulk_enabled=bulk)
    assert len(got["empty"]) == 3
    for v in got["empty"]:
        assert v.shape == (0,) and v.dtype == np.dtype("u4")
    assert got["memget0"].shape == (0,)
    assert got["memget0"].dtype == np.dtype("u4")


@pytest.mark.parametrize("bulk", [True, False])
def test_gather_span_crosses_affinity_boundary(bulk):
    """A gathered span that starts in one thread's block and ends in
    the next must split like memget does — notably on the serial path,
    where each element batch used to be issued as a single-block GET."""
    got = {}

    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        if th.id == 0:
            arr.data[:] = np.arange(64, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            # 6..10 spans blocks 0 and 1 (threads 0 and 1);
            # 30..34 spans threads 3 and 4 — i.e. both nodes.
            got["spans"] = yield from th.gather(arr, [6, 30], nelems=4)
        yield from th.barrier()

    run1(kernel, bulk_enabled=bulk)
    assert [list(v) for v in got["spans"]] == [[6, 7, 8, 9],
                                              [30, 31, 32, 33]]


@pytest.mark.parametrize("bulk", [True, False])
def test_gather_nelems_larger_than_blocksize(bulk):
    """nelems > blocksize covers several whole blocks per index."""
    got = {}

    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=4, dtype="u4")
        if th.id == 0:
            arr.data[:] = np.arange(64, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            got["wide"] = yield from th.gather(arr, [2, 45], nelems=10)
        yield from th.barrier()

    run1(kernel, bulk_enabled=bulk)
    assert [list(v) for v in got["wide"]] == [
        list(range(2, 12)), list(range(45, 55))]


@pytest.mark.parametrize("bulk", [True, False])
def test_memget_negative_nelems_rejected(bulk):
    def kernel(th):
        arr = yield from th.all_alloc(16, blocksize=4, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            with pytest.raises(UPCRuntimeError):
                yield from th.memget(arr, 0, -1)
        yield from th.barrier()

    run1(kernel, bulk_enabled=bulk)
