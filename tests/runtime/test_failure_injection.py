"""Failure injection: platform limits and misuse must fail loudly."""

import pytest
from dataclasses import replace

from repro.memory import PinLimitError
from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig
from repro.util.units import KB


def test_pin_total_limit_surfaces_as_run_error():
    """GM's DMAable-memory cap (§3.3): if the machine can't pin the
    object on first remote touch, the run fails with PinLimitError —
    not a hang, not a silent wrong answer."""
    tiny = replace(
        GM_MARENOSTRUM,
        transport=GM_MARENOSTRUM.transport.with_overrides(
            max_pin_total_bytes=4 * KB))
    cfg = RuntimeConfig(machine=tiny, nthreads=4, threads_per_node=2,
                        seed=1)
    rt = Runtime(cfg)

    def kernel(th):
        # 64 KB arena per node — far beyond the 4 KB pin budget.
        arr = yield from th.all_alloc(64 * KB, blocksize=None, dtype="u1")
        yield from th.barrier()
        if th.id == 0:
            yield from th.get(arr, 40 * KB)   # first touch pins
        yield from th.barrier()

    rt.spawn(kernel)
    with pytest.raises(PinLimitError):
        rt.run()


def test_pin_limit_does_not_trigger_when_cache_disabled():
    """Without the cache nothing pins, so the same program runs."""
    tiny = replace(
        GM_MARENOSTRUM,
        transport=GM_MARENOSTRUM.transport.with_overrides(
            max_pin_total_bytes=4 * KB))
    cfg = RuntimeConfig(machine=tiny, nthreads=4, threads_per_node=2,
                        cache_enabled=False, seed=1)
    rt = Runtime(cfg)

    def kernel(th):
        arr = yield from th.all_alloc(64 * KB, blocksize=None, dtype="u1")
        yield from th.barrier()
        if th.id == 0:
            yield from th.get(arr, 40 * KB)
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()  # must complete


def test_chunked_policy_survives_small_pin_budget():
    """The §3.1 'more elaborated technique': chunked pinning keeps the
    registered footprint bounded where pin-everything would blow the
    budget."""
    from repro.core import PinningPolicy
    tiny = replace(
        GM_MARENOSTRUM,
        transport=GM_MARENOSTRUM.transport.with_overrides(
            max_pin_total_bytes=8 * KB))
    cfg = RuntimeConfig(machine=tiny, nthreads=4, threads_per_node=2,
                        pinning_policy=PinningPolicy.CHUNKED,
                        pin_chunk_bytes=2 * KB, seed=1)
    rt = Runtime(cfg)

    def kernel(th):
        arr = yield from th.all_alloc(64 * KB, blocksize=None, dtype="u1")
        yield from th.barrier()
        if th.id == 0:
            v = yield from th.get(arr, 40 * KB)
            _ = v
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()  # chunked: only the touched 2 KB chunk pins
    pinned = rt.pinned_table(1).pins.pinned_bytes
    assert 0 < pinned <= 8 * KB


def test_double_spawn_runs_both_programs():
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=2,
                        threads_per_node=2, seed=1)
    rt = Runtime(cfg)
    log = []

    def a(th):
        yield from th.compute(1.0)
        log.append(("a", th.id))

    def b(th):
        yield from th.compute(2.0)
        log.append(("b", th.id))

    rt.spawn(a)
    rt.spawn(b)
    rt.run()
    assert len(log) == 4
