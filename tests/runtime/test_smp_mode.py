"""Pure-SMP operation (section 2: the runtime "can be implemented on
top of a variety of architectures, SMP or distributed").

On a single node every shared access is a load/store or an intra-node
copy: no network traffic, no handlers, no address-cache involvement —
and the programming model is unchanged.
"""

import pytest

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig
from repro.workloads import PointerParams, run_pointer


def make_smp(nthreads=8):
    return Runtime(RuntimeConfig(machine=GM_MARENOSTRUM,
                                 nthreads=nthreads,
                                 threads_per_node=nthreads, seed=1))


def test_smp_runtime_has_one_node():
    rt = make_smp()
    assert rt.cluster.nnodes == 1


def test_smp_program_runs_without_network():
    rt = make_smp()

    def kernel(th):
        arr = yield from th.all_alloc(256, blocksize=16, dtype="u4")
        yield from th.barrier()
        v = yield from th.get(arr, (th.id * 37) % 256)
        yield from th.put(arr, th.id, int(v) + 1)
        yield from th.barrier()
        total = yield from th.all_reduce(th.id)
        return total

    procs = rt.spawn(kernel)
    res = rt.run()
    assert all(p.value == sum(range(8)) for p in procs)
    assert rt.metrics.remote_ops == 0
    assert res.cache_stats.accesses == 0
    c = rt.cluster.transport.counters
    assert c.am_requests == 0 and c.rdma_gets == 0


def test_smp_pointer_stressmark_cache_is_noop():
    params = PointerParams(machine=GM_MARENOSTRUM, nthreads=4,
                           threads_per_node=4, nelems=1024, hops=16,
                           seed=3)
    on = run_pointer(params)
    from dataclasses import replace
    off = run_pointer(replace(params, cache_enabled=False))
    assert on.check == off.check
    assert on.elapsed_us == pytest.approx(off.elapsed_us)


def test_smp_barrier_cost_is_shared_memory_only():
    rt = make_smp()
    assert rt.barrier_mgr.network_cost_us() < 1.0
