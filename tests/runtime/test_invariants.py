"""Cross-module invariants tying the implementation to the paper's
architecture claims."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network import GM_MARENOSTRUM, LAPI_POWER5
from repro.runtime import Runtime, RuntimeConfig


def make_rt(**kw):
    kw.setdefault("machine", GM_MARENOSTRUM)
    kw.setdefault("nthreads", 8)
    kw.setdefault("threads_per_node", 4)
    return Runtime(RuntimeConfig(**kw))


def run_each(kernel, **kw):
    rt = make_rt(**kw)
    rt.spawn(kernel)
    res = rt.run()
    return rt, res


def test_svd_translation_only_on_uncached_path():
    """Section 2.2: the SVD deref at the target is the price of the
    default protocol; an RDMA (cache-hit) access must do zero remote
    directory lookups."""
    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            for _ in range(10):
                yield from th.get(arr, 40)   # node 1, 1 miss + 9 hits
        yield from th.barrier()

    rt, _ = run_each(kernel)
    assert rt.svd(1).lookups == 1            # only the miss translated
    assert rt.metrics.rdma_gets == 9

    rt_off, _ = run_each(kernel, cache_enabled=False)
    assert rt_off.svd(1).lookups == 10       # every access translated


def test_every_rdma_target_was_pinned_first():
    """Section 3.1: "before an address can be tagged in another node's
    address cache it needs to be pinned locally"."""
    def kernel(th):
        arr = yield from th.all_alloc(256, blocksize=16, dtype="u4")
        yield from th.barrier()
        if th.id < 4:
            for k in range(6):
                yield from th.get(arr, (64 + th.id * 16 + k) % 256)
        yield from th.barrier()

    rt, _ = run_each(kernel)
    for node in rt.cluster.nodes:
        cache = rt.addr_cache(node.id)
        for (handle, target), _addr in cache.entries().items():
            table = rt.pinned_table(target)
            assert table.entry_count_for(handle) >= 1, (
                f"cache on node {node.id} holds an address for "
                f"unpinned object {handle} on node {target}")


def test_rdma_never_wakes_target_progress_engine():
    """Figure 3b: RDMA has no target-CPU involvement."""
    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            for _ in range(20):
                yield from th.get(arr, 40)
        yield from th.barrier()

    rt, _ = run_each(kernel)
    # Node 1 serviced exactly one AM (the compulsory miss); the 19
    # RDMA hits never touched its progress engine.
    assert rt.cluster.node(1).progress.serviced == 1


def test_transport_counters_balance():
    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            yield from th.get(arr, 40)
            yield from th.get(arr, 41)
            yield from th.put(arr, 42, 7)
        yield from th.barrier()

    rt, _ = run_each(kernel)
    c = rt.cluster.transport.counters
    m = rt.metrics
    assert c.rdma_gets == m.rdma_gets
    assert c.rdma_puts == m.rdma_puts
    assert c.am_replies <= c.am_requests
    assert c.bytes_rdma > 0


def test_handler_exception_surfaces_as_program_error():
    """Failure injection: a crashing header handler must fail the run
    loudly, not hang it."""
    rt = make_rt()

    def kernel(th):
        arr = yield from th.all_alloc(64, blocksize=8, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            # Sabotage: remove the target's SVD entry mid-run.
            rt.svd(1).remove(arr.handle)
            yield from th.get(arr, 40)
        yield from th.barrier()

    rt.spawn(kernel)
    with pytest.raises(Exception):
        rt.run()


def test_nthreads_one_degenerate_case():
    def kernel(th):
        arr = yield from th.all_alloc(16, blocksize=4, dtype="u4")
        yield from th.put(arr, 3, 9)
        v = yield from th.get(arr, 3)
        assert v == 9
        yield from th.barrier()

    rt, res = run_each(kernel, nthreads=1, threads_per_node=1)
    assert rt.metrics.remote_ops == 0
    assert res.elapsed_us > 0


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 100),
    machine_lapi=st.booleans(),
    ops=st.lists(
        st.tuples(st.sampled_from(["get", "put", "compute", "barrier"]),
                  st.integers(0, 63)),
        min_size=1, max_size=25),
)
def test_property_random_programs_equivalent_cached_uncached(
        seed, machine_lapi, ops):
    """Any straight-line UPC program (gets, puts, computes, barriers)
    produces identical results and data-plane state with the cache on
    and off."""
    machine = LAPI_POWER5 if machine_lapi else GM_MARENOSTRUM

    def run_mode(cache_enabled):
        cfg = RuntimeConfig(machine=machine, nthreads=4,
                            threads_per_node=2, seed=seed,
                            cache_enabled=cache_enabled)
        rt = Runtime(cfg)

        def kernel(th):
            arr = yield from th.all_alloc(64, blocksize=8, dtype="i8")
            yield from th.barrier()
            acc = 0
            # Phase discipline: reads (of neighbours' slots) and
            # writes (of private slots) may not share an epoch — a
            # barrier separates them.  Every thread follows the same
            # ops list, so the inserted barriers align collectively
            # and the program is race-free by construction.
            phase = None
            for op, idx in ops:
                if op in ("get", "put") and phase not in (None, op):
                    yield from th.barrier()
                if op == "get":
                    phase = "get"
                    slot = (idx // 4) * 4 + (th.id + 1) % th.nthreads
                    v = yield from th.get(arr, slot)
                    acc += int(v)
                elif op == "put":
                    phase = "put"
                    slot = (idx // 4) * 4 + th.id
                    yield from th.put(arr, slot, acc + th.id + 1)
                elif op == "compute":
                    yield from th.compute(float(idx) / 7.0)
                else:
                    yield from th.barrier()
                    phase = None
            yield from th.barrier()
            return acc

        procs = rt.spawn(kernel)
        rt.run()
        arr_state = None
        return [p.value for p in procs]

    assert run_mode(True) == run_mode(False)
