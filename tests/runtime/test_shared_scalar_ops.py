"""Shared scalars flowing through the full GET/PUT machinery."""

import pytest

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig


def make_rt(**kw):
    kw.setdefault("threads_per_node", 4)
    return Runtime(RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=8, **kw))


def test_remote_scalar_get_put_roundtrip():
    rt = make_rt()
    sc = rt.alloc_scalar(owner_thread=5, dtype="f8")  # lives on node 1

    def kernel(th):
        if th.id == 5:
            sc.write(2.5)
        yield from th.barrier()
        v = yield from th.get(sc, 0)
        assert v == 2.5
        yield from th.barrier()
        if th.id == 0:
            yield from th.put(sc, 0, 7.25)
            yield from th.fence()
            w = yield from th.get(sc, 0)
            assert w == 7.25
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()


def test_scalar_addresses_are_cached_too():
    rt = make_rt()
    sc = rt.alloc_scalar(owner_thread=4, dtype="i8")

    def kernel(th):
        yield from th.barrier()
        if th.id == 0:
            for _ in range(6):
                yield from th.get(sc, 0)
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()
    cache = rt.addr_cache(0)
    assert (sc.handle, 1) in cache
    assert cache.stats.hits == 5
    assert rt.metrics.rdma_gets == 5


def test_scalar_local_access_is_cheap():
    rt = make_rt()
    sc = rt.alloc_scalar(owner_thread=0)

    def kernel(th):
        if th.id == 0:
            yield from th.put(sc, 0, 1.0)
            v = yield from th.get(sc, 0)
            assert v == 1.0
        yield from th.barrier()

    rt.spawn(kernel)
    rt.run()
    assert rt.metrics.get_local.n == 1
    assert rt.metrics.remote_ops == 0


def test_scalar_index_validation():
    rt = make_rt()
    sc = rt.alloc_scalar(owner_thread=0)
    with pytest.raises(ValueError):
        sc.addr_of(1)
    with pytest.raises(ValueError):
        sc.read(2)


def test_scalar_storage_map():
    rt = make_rt()
    sc = rt.alloc_scalar(owner_thread=6)
    assert set(sc.node_base) == {sc.home_node}
    assert sc.node_bytes[sc.home_node] == sc.elem_size
    node, vaddr = sc.addr()
    assert rt.cluster.node(node).memory.owns(vaddr)
