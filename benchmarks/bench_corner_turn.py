"""Extension — the Corner Turn stressmark (distributed transpose).

Not in the paper's four-stressmark subset, but in the DIS suite it
ports from; exercises the multiblocked-array machinery with an
all-to-all tile exchange.  Regular schedule + bounded partner set →
high hit rates and solid gains on RDMA-capable fabrics.
"""

from dataclasses import replace

from repro.network import GM_MARENOSTRUM, LAPI_POWER5
from repro.workloads import CornerTurnParams, run_corner_turn


def test_corner_turn(benchmark):
    def run_both():
        out = {}
        for machine, tpn in ((GM_MARENOSTRUM, 4), (LAPI_POWER5, 8)):
            params = CornerTurnParams(
                machine=machine, nthreads=16, threads_per_node=tpn,
                dim=64, tile=4, seed=1)
            on = run_corner_turn(params)
            off = run_corner_turn(replace(params, cache_enabled=False))
            assert on.check == off.check and on.check[0]
            out[machine.name] = {
                "improvement_pct": 100 * (1 - on.elapsed_us
                                          / off.elapsed_us),
                "hit_rate": on.hit_rate,
            }
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print("Corner Turn (64x64 doubles, 4x4 tiles, 16 threads):")
    for name, r in results.items():
        print(f"  {name:>16}: improvement {r['improvement_pct']:5.1f}%  "
              f"hit rate {r['hit_rate']:.3f}")
    assert results["marenostrum-gm"]["improvement_pct"] > 10
    assert results["marenostrum-gm"]["hit_rate"] > 0.6
