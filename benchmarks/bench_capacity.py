"""Ablation — §4.5's memory/speedup compromise in the time domain.

Speedup vs address-cache capacity for the Pointer stressmark: grows
until the (nodes - 1)-entry working set fits, then saturates — the
quantitative case for the paper's 100-entry default.
"""

from repro.experiments.capacity import capacity_speedup


def test_capacity_speedup(benchmark, show):
    fig = benchmark.pedantic(
        lambda: capacity_speedup(threads=64, nodes=16),
        rounds=1, iterations=1)
    show(fig)
    rows = {r["capacity"]: r for r in fig.rows()}
    assert abs(rows[0]["improvement_pct"]) < 5.0
    assert rows[16]["improvement_pct"] > 0.85 * rows[100]["improvement_pct"]
    assert rows[4]["improvement_pct"] < rows[16]["improvement_pct"]
