"""Ablation — how the miss path learns remote addresses (section 3).

The paper piggybacks the base address "either on the data stream or on
the ACK message".  The strawman alternative is a dedicated
address-fetch round trip before the first RDMA.  Piggybacking must win
on first-touch latency (one round trip instead of two) while ending at
the same steady-state hit rate.
"""

from repro.core.piggyback import PiggybackConfig, PiggybackMode
from repro.network import GM_MARENOSTRUM
from repro.workloads import PointerParams, run_pointer


def _run(mode: PiggybackMode):
    params = PointerParams(
        machine=GM_MARENOSTRUM, nthreads=16, threads_per_node=4,
        nelems=1 << 14, hops=48, seed=1,
        piggyback=PiggybackConfig(mode=mode),
    )
    return run_pointer(params)


def test_piggyback_ablation(benchmark):
    def run_all():
        return {mode.value: _run(mode)
                for mode in (PiggybackMode.ON_DATA, PiggybackMode.EXPLICIT,
                             PiggybackMode.DISABLED)}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("Piggyback ablation (Pointer, 16 threads / 4 nodes):")
    for name, r in results.items():
        print(f"  {name:>9}: elapsed {r.elapsed_us:9.1f}us  "
              f"hit rate {r.hit_rate:.3f}")
    on_data = results["on-data"]
    explicit = results["explicit"]
    disabled = results["disabled"]
    # Functional equivalence across the modes.
    assert on_data.check == explicit.check == disabled.check
    # The integrated piggyback beats the dedicated fetch...
    assert on_data.elapsed_us < explicit.elapsed_us
    # ...and both leave a populated cache, unlike DISABLED.
    assert on_data.hit_rate > 0.8 and explicit.hit_rate > 0.8
    assert disabled.hit_rate == 0.0
    # Without population the cache never helps: slowest of the three.
    assert disabled.elapsed_us >= on_data.elapsed_us
