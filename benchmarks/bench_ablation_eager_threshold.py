"""Ablation — the eager/rendezvous crossover point.

Section 5: MPI implementations "follow a differential approach based
on message size, switching between preallocated registered memory
buffers (Bounce Buffers) for short messages and dynamic memory
registration ... (Rendezvous) for large ones.  The crossover point
between the protocols is dependent on the underlying network hardware
and software, requiring tuning for each machine."

This sweep measures uncached GET latency at a fixed message size while
moving GM's ``eager_max_bytes`` across it: too-low thresholds force
rendezvous handshakes + registration on mid-size messages; too-high
thresholds keep paying double copies on large ones.
"""

from dataclasses import replace as dc_replace

from repro.network import GM_MARENOSTRUM
from repro.util.units import KB
from repro.workloads.micro import MicroParams, get_roundtrip_us


def _latency(eager_max: int, msg: int) -> float:
    machine = dc_replace(
        GM_MARENOSTRUM,
        transport=GM_MARENOSTRUM.transport.with_overrides(
            eager_max_bytes=eager_max))
    return get_roundtrip_us(MicroParams(machine=machine, msg_bytes=msg,
                                        cache_enabled=False, reps=6))


def test_eager_threshold_ablation(benchmark):
    thresholds = [1 * KB, 4 * KB, 16 * KB, 64 * KB, 256 * KB]
    sizes = [2 * KB, 32 * KB, 128 * KB]

    def run_all():
        return {t: {s: _latency(t, s) for s in sizes}
                for t in thresholds}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("Uncached GET latency (us) vs GM eager/rendezvous threshold:")
    header = "  threshold " + "".join(f"{s // 1024:>8}KB" for s in sizes)
    print(header)
    for t, row in results.items():
        print(f"  {t // 1024:>7}KB " + "".join(f"{row[s]:>10.1f}"
                                               for s in sizes))
    # A 2 KB message: with the pin-down cache warm, rendezvous and
    # eager are within a few percent of each other — the crossover is
    # flat at small sizes, which is exactly why it "requires tuning".
    small_low = results[1 * KB][2 * KB]
    small_high = results[16 * KB][2 * KB]
    assert abs(small_low - small_high) < 0.15 * small_high
    # Mid/large messages: a too-high threshold keeps paying double
    # copies; the rendezvous (zero-copy) side wins clearly.
    assert results[64 * KB][32 * KB] > 1.2 * results[16 * KB][32 * KB]
    assert results[256 * KB][128 * KB] > 1.2 * results[16 * KB][128 * KB]
