"""The flight recorder's zero-cost-when-off guarantee, quantified.

Observability that perturbs the system it observes is worse than none:
the acceptance bar for the recorder is that a run with recording *off*
(the default — a disabled :class:`~repro.obs.EventLog`) inflates the
simulator's event count by less than 5% over a runtime with no log at
all, and that virtual time is bit-identical in all three modes (no
log, log off, log on).  Emits are pure observations — appends to a
Python list, never simulator events — so the measured inflation is
exactly zero; the wall-clock column shows what the ``if log.enabled``
guards actually cost the simulator.
"""

import time

from repro.network import GM_MARENOSTRUM
from repro.obs import EventLog
from repro.workloads import FieldParams, run_field
from repro.workloads.kv_traffic import TrafficParams, run_kv_traffic
from repro.workloads.sharded import run_field_sharded

#: Field stressmark sized to a few thousand remote ops.
_PARAMS = dict(machine=GM_MARENOSTRUM, nthreads=16, threads_per_node=4,
               nelems=32 * 1024, ntokens=4, seed=1)


def _run(events):
    t0 = time.perf_counter()
    res = run_field(FieldParams(events=events, **_PARAMS))
    wall = time.perf_counter() - t0
    return res.run, wall


def test_recording_overhead(benchmark):
    def measure():
        base, base_wall = _run(events=None)
        off, off_wall = _run(events=EventLog(enabled=False))
        on_log = EventLog()
        on, on_wall = _run(events=on_log)
        return {
            "base": base, "off": off, "on": on,
            "base_wall": base_wall, "off_wall": off_wall,
            "on_wall": on_wall, "recorded": len(on_log),
        }

    r = benchmark.pedantic(measure, rounds=1, iterations=1)
    base, off, on = r["base"], r["off"], r["on"]
    off_inflation = (off.sim_events - base.sim_events) / base.sim_events
    on_inflation = (on.sim_events - base.sim_events) / base.sim_events
    print()
    print("flight-recorder overhead (field, 16 threads / 4 nodes):")
    print(f"  {'mode':>10} {'sim_events':>11} {'elapsed_us':>12} "
          f"{'wall_s':>8}")
    for name, res, wall in (("no log", base, r["base_wall"]),
                            ("log off", off, r["off_wall"]),
                            ("log on", on, r["on_wall"])):
        print(f"  {name:>10} {res.sim_events:>11d} "
              f"{res.elapsed_us:>12.1f} {wall:>8.3f}")
    print(f"  recording-off event inflation: {off_inflation:.2%} "
          f"(bar: < 5%); recording-on: {on_inflation:.2%}; "
          f"{r['recorded']} events captured when on")
    # The acceptance bar, and the stronger truths behind it.
    assert off_inflation < 0.05
    assert off.sim_events == base.sim_events
    assert on.sim_events == base.sim_events
    assert off.elapsed_us == base.elapsed_us == on.elapsed_us
    assert r["recorded"] > 0


def test_sharded_recording_overhead(benchmark):
    """Same bar for the sharded core: per-shard recorders on must not
    add a single simulator event to any shard, nor move virtual time."""
    def measure():
        t0 = time.perf_counter()
        off = run_field_sharded(32, 2, ntokens=4, probes=2)
        off_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        on = run_field_sharded(32, 2, ntokens=4, probes=2, trace=True)
        on_wall = time.perf_counter() - t0
        return {"off": off, "on": on, "off_wall": off_wall,
                "on_wall": on_wall,
                "recorded": sum(len(b) for b in on["run"].shard_events)}

    r = benchmark.pedantic(measure, rounds=1, iterations=1)
    off, on = r["off"], r["on"]
    inflation = (on["events"] - off["events"]) / off["events"]
    print()
    print("sharded flight-recorder overhead (field, 32 threads "
          "/ 2 shards):")
    print(f"  {'mode':>10} {'sim_events':>11} {'now_us':>12} "
          f"{'wall_s':>8}")
    for name, res, wall in (("trace off", off, r["off_wall"]),
                            ("trace on", on, r["on_wall"])):
        print(f"  {name:>10} {res['events']:>11d} "
              f"{res['now']:>12.1f} {wall:>8.3f}")
    print(f"  recording-on event inflation: {inflation:.2%} "
          f"(bar: < 5%); {r['recorded']} events captured when on")
    assert inflation < 0.05
    assert on["events"] == off["events"]
    assert on["now"] == off["now"]
    assert on["digest"] == off["digest"]
    assert r["recorded"] > 0
    assert not any(off["run"].shard_events)


def test_kv_traffic_slo_overhead(benchmark):
    """KV service leg: op spans plus the streaming SLO monitor on must
    leave the traffic run bit-identical (events, time, digests)."""
    p_off = TrafficParams(requests=5000)
    p_on = TrafficParams(requests=5000, slo_target_us=30.0,
                         slo_window_us=500.0)

    def measure():
        t0 = time.perf_counter()
        off = run_kv_traffic(p_off, 2)
        off_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        on = run_kv_traffic(p_on, 2, trace=True)
        on_wall = time.perf_counter() - t0
        return {"off": off, "on": on, "off_wall": off_wall,
                "on_wall": on_wall,
                "recorded": sum(len(b)
                                for b in on.extra["run"].shard_events)}

    r = benchmark.pedantic(measure, rounds=1, iterations=1)
    off, on = r["off"], r["on"]
    inflation = (on.events - off.events) / off.events
    print()
    print("kv traffic obs overhead (5000 requests / 2 shards, "
          "spans + SLO monitor on):")
    print(f"  {'mode':>10} {'sim_events':>11} {'now_us':>12} "
          f"{'wall_s':>8}")
    for name, res, wall in (("obs off", off, r["off_wall"]),
                            ("obs on", on, r["on_wall"])):
        print(f"  {name:>10} {res.events:>11d} "
              f"{res.now:>12.1f} {wall:>8.3f}")
    nwin = len(on.extra["slo"]["windows"])
    print(f"  event inflation: {inflation:.2%} (bar: < 5%); "
          f"{r['recorded']} events + {nwin} SLO window(s) when on")
    assert inflation < 0.05
    assert on.events == off.events
    assert on.now == off.now
    assert on.digests == off.digests
    assert (on.hist == off.hist).all()
    assert r["recorded"] > 0 and nwin > 0
    assert "slo" not in off.extra
