"""E2 — Figure 6 (right): PUT overhead improvement vs message size.

The famous negative panel: on LAPI, RDMA PUT for small messages is up
to ~200% *slower* than the default protocol (the HPS trades latency
for throughput, and the uncached PUT returns at local hand-off while
the remote CPU overlaps with the next send).  This measurement is why
the paper disabled the cache for LAPI PUTs.
"""

from repro.experiments import fig6_put
from repro.workloads.micro import FIG6_SIZES


def test_fig6_put(benchmark, show):
    fig = benchmark.pedantic(
        lambda: fig6_put(sizes=FIG6_SIZES, reps=8),
        rounds=1, iterations=1)
    show(fig)
    rows = {r["size_bytes"]: r for r in fig.rows()}
    # GM: no benefit (and no harm) for small PUTs.
    assert abs(rows[16]["gm_pct"]) < 15
    assert abs(rows[1024]["gm_pct"]) < 15
    # LAPI: deep regression for small PUTs...
    assert -300 <= rows[16]["lapi_pct"] <= -120
    # ...recovering and crossing to positive for large transfers.
    assert rows[262144]["lapi_pct"] > 10
    # GM gains in the mid-size range (copy avoidance).
    assert rows[16384]["gm_pct"] > 10
