"""The bulk-transfer engine's pipeline/coalescing sweep.

Not a paper figure — this quantifies the engine added on top of the
reproduced runtime: a multi-block ``memget`` whose remote half used to
pay one blocking round trip per block now coalesces arena-contiguous
blocks and keeps ``bulk_max_inflight`` messages on the wire.  The
sweep reports, per remote-block count:

* virtual-time speedup over the serial (engine-off) path,
* simulator events saved (the coalesced messages also make the
  *simulation itself* cheaper), and
* events per transferred byte — the substrate-efficiency view.

Three configurations isolate the two mechanisms: serial baseline,
pipeline-only (coalescing off), and the full engine at defaults.
"""

import numpy as np

from benchmarks.conftest import BULK_BENCH_BLOCKS

from repro.network import GM_MARENOSTRUM
from repro.runtime import Runtime, RuntimeConfig

#: Elements per block (u4): 256 B per block on the wire.
BLOCKSIZE = 64


def _run_memget(remote_blocks: int, **kw):
    """Thread 0 bulk-reads a span alternating local/remote blocks;
    ``remote_blocks`` of them live on the other node."""
    nelems = 2 * remote_blocks * BLOCKSIZE
    cfg = RuntimeConfig(machine=GM_MARENOSTRUM, nthreads=2,
                        threads_per_node=1, **kw)
    rt = Runtime(cfg)
    got = {}

    def kernel(th):
        arr = yield from th.all_alloc(nelems, blocksize=BLOCKSIZE,
                                      dtype="u4")
        if th.id == 0:
            arr.data[:] = np.arange(nelems, dtype="u4")
        yield from th.barrier()
        if th.id == 0:
            got["data"] = yield from th.memget(arr, 0, nelems)
        yield from th.barrier()

    rt.spawn(kernel)
    res = rt.run()
    return got["data"], res


def test_bulk_pipeline_sweep(benchmark):
    def sweep():
        rows = []
        for nblocks in BULK_BENCH_BLOCKS:
            data_off, off = _run_memget(nblocks, bulk_enabled=False)
            data_pipe, pipe = _run_memget(nblocks,
                                          bulk_max_coalesce_bytes=0)
            data_on, on = _run_memget(nblocks)
            assert np.array_equal(data_on, data_off)
            assert np.array_equal(data_pipe, data_off)
            nbytes = nblocks * BLOCKSIZE * 4
            rows.append({
                "blocks": nblocks,
                "speedup_pipe": off.elapsed_us / pipe.elapsed_us,
                "speedup_full": off.elapsed_us / on.elapsed_us,
                "events_off": off.sim_events,
                "events_on": on.sim_events,
                "events_saved_pct":
                    100 * (1 - on.sim_events / off.sim_events),
                "events_per_kb_off": 1024 * off.sim_events / nbytes,
                "events_per_kb_on": 1024 * on.sim_events / nbytes,
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("bulk pipeline sweep (2 threads / 2 nodes, 256 B blocks):")
    print("  blocks  speedup(pipe)  speedup(full)  events off->on"
          "   ev/KiB off->on")
    for r in rows:
        print(f"  {r['blocks']:6d}  {r['speedup_pipe']:12.2f}x"
              f"  {r['speedup_full']:12.2f}x"
              f"  {r['events_off']:5d} -> {r['events_on']:5d}"
              f" (-{r['events_saved_pct']:4.1f}%)"
              f"  {r['events_per_kb_off']:6.1f} -> "
              f"{r['events_per_kb_on']:.1f}")
    # Acceptance: a 16-remote-block memget at the default window is at
    # least 2x faster in virtual time and 20% cheaper to simulate.
    at16 = next(r for r in rows if r["blocks"] == 16)
    assert at16["speedup_full"] >= 2.0
    assert at16["events_saved_pct"] >= 20.0
    # Pipelining alone (no coalescing) must already overlap transfers.
    assert at16["speedup_pipe"] > 1.2
