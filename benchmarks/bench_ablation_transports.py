"""Ablation — the address cache across all four XLUPC transports.

Section 2 lists TCP/IP sockets, LAPI, Myrinet/GM and the BlueGene/L
messaging framework as implemented transports.  The cache's benefit is
a property of the *fabric*: it requires one-sided operations to
unlock.  This sweep runs the same random-access workload everywhere:

* GM / BG/L — RDMA-capable, polling: solid gains;
* LAPI — RDMA-capable, interrupt: gains on GETs;
* TCP — two-sided only: the cache is inert by construction (the
  negative control; improvement must be ~0).
"""

from dataclasses import replace

from repro.network import (
    BGL_TORUS,
    GM_MARENOSTRUM,
    LAPI_POWER5,
    TCP_CLUSTER,
)
from repro.workloads import PointerParams, run_pointer


def _improvement(machine) -> float:
    params = PointerParams(
        machine=machine, nthreads=16,
        threads_per_node=min(4, machine.default_threads_per_node),
        nelems=1 << 13, hops=48, seed=1)
    on = run_pointer(replace(params, cache_enabled=True))
    off = run_pointer(replace(params, cache_enabled=False))
    assert on.check == off.check
    return 100 * (1 - on.elapsed_us / off.elapsed_us)


def test_transport_sweep(benchmark):
    def run_all():
        return {m.name: _improvement(m)
                for m in (GM_MARENOSTRUM, LAPI_POWER5, BGL_TORUS,
                          TCP_CLUSTER)}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print("Address-cache improvement by transport (Pointer, 16 threads):")
    for name, imp in results.items():
        print(f"  {name:>16}: {imp:6.1f}%")
    assert results["marenostrum-gm"] > 15
    assert results["bluegene-l"] > 10
    assert results["power5-lapi"] > 10
    assert abs(results["tcp-cluster"]) < 1.0  # the negative control
