"""Ablation — the section-2 scalability rationale, quantified.

Three tables back the paper's design discussion:

* per-node metadata: SVD O(objects) vs full table O(nodes x objects)
  vs the bounded address cache;
* address-space consumption under the identical-addresses model the
  paper rejects ("it tends to fragment the address space");
* ``upc_all_alloc`` critical-path latency vs machine size (log-tree).
"""

from repro.experiments.scalability import (
    address_space_ablation,
    allocation_latency,
    directory_memory,
)


def test_directory_memory(benchmark, show):
    fig = benchmark.pedantic(
        lambda: directory_memory(objects=32), rounds=1, iterations=1)
    show(fig)
    rows = fig.rows()
    assert len({r["svd_bytes"] for r in rows}) == 1   # O(objects)
    assert rows[-1]["full_table_bytes"] > 1000 * rows[-1]["svd_bytes"]
    assert rows[-1]["addr_cache_bytes"] <= 100 * 64


def test_identical_addresses_ablation(benchmark, show):
    fig = benchmark.pedantic(
        lambda: address_space_ablation(nodes=16, threads_per_node=4,
                                       allocs_per_thread=30),
        rounds=1, iterations=1)
    show(fig)
    by_model = {r["model"]: r for r in fig.rows()}
    assert by_model["identical-addresses"]["blowup_vs_svd"] >= 8.0


def test_allocation_latency(benchmark, show):
    fig = benchmark.pedantic(
        lambda: allocation_latency(node_counts=[2, 8, 32, 64]),
        rounds=1, iterations=1)
    show(fig)
    rows = fig.rows()
    assert rows[-1]["per_node_ns"] < rows[0]["per_node_ns"]
