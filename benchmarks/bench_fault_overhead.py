"""The fault plane's zero-cost-when-off guarantee, quantified.

A reliability layer that slows down the healthy fabric is a tax on
every run that never needed it: the acceptance bar is that a run with
an *empty* fault plan inflates the simulator's event count by less
than 5% over a runtime with no plan at all — and, stronger, that the
two are bit-identical (same event count, same virtual time), because
an empty plan installs no injector and the transport takes its exact
original paths.  A dormant plan — rules present but gated behind a
window that never opens — is allowed to cost simulator events for its
fate draws and timers, but must leave virtual time within the same
5% bar.  The chaos column shows what recovery actually costs when the
fabric fights back.
"""

import time

from repro.faults import PROFILES, FaultPlan, LinkFault
from repro.network import GM_MARENOSTRUM
from repro.workloads import FieldParams, run_field

#: Field stressmark sized to a few thousand remote ops.
_PARAMS = dict(machine=GM_MARENOSTRUM, nthreads=16, threads_per_node=4,
               nelems=32 * 1024, ntokens=4, seed=1)

#: Rules that can never fire: the window opens long after the run ends.
_DORMANT = FaultPlan(seed=1, links=(
    LinkFault(kind="drop", prob=1.0, t_start=1e12, scope="both"),))


def _run(fault_plan):
    t0 = time.perf_counter()
    res = run_field(FieldParams(fault_plan=fault_plan, **_PARAMS))
    wall = time.perf_counter() - t0
    return res.run, wall


def test_fault_plane_overhead(benchmark):
    def measure():
        base, base_wall = _run(fault_plan=None)
        empty, empty_wall = _run(fault_plan=FaultPlan(seed=7))
        dormant, dormant_wall = _run(fault_plan=_DORMANT)
        chaos, chaos_wall = _run(fault_plan=PROFILES["chaos"].with_seed(7))
        return {
            "base": base, "empty": empty, "dormant": dormant,
            "chaos": chaos, "base_wall": base_wall,
            "empty_wall": empty_wall, "dormant_wall": dormant_wall,
            "chaos_wall": chaos_wall,
        }

    r = benchmark.pedantic(measure, rounds=1, iterations=1)
    base, empty, dormant = r["base"], r["empty"], r["dormant"]
    chaos = r["chaos"]
    empty_inflation = (empty.sim_events - base.sim_events) / base.sim_events
    dormant_time = (dormant.elapsed_us - base.elapsed_us) / base.elapsed_us
    chaos_time = (chaos.elapsed_us - base.elapsed_us) / base.elapsed_us
    print()
    print("fault-plane overhead (field, 16 threads / 4 nodes):")
    print(f"  {'mode':>10} {'sim_events':>11} {'elapsed_us':>12} "
          f"{'wall_s':>8}")
    for name, res, wall in (("no plan", base, r["base_wall"]),
                            ("empty", empty, r["empty_wall"]),
                            ("dormant", dormant, r["dormant_wall"]),
                            ("chaos", chaos, r["chaos_wall"])):
        print(f"  {name:>10} {res.sim_events:>11d} "
              f"{res.elapsed_us:>12.1f} {wall:>8.3f}")
    print(f"  empty-plan event inflation: {empty_inflation:.2%} "
          f"(bar: < 5%); dormant virtual-time inflation: "
          f"{dormant_time:.2%} (bar: < 5%); chaos slowdown: "
          f"{chaos_time:.2%}")
    # The acceptance bar, and the stronger truths behind it.
    assert empty_inflation < 0.05
    assert empty.sim_events == base.sim_events
    assert empty.elapsed_us == base.elapsed_us
    assert dormant_time < 0.05
    # Chaos recovers — slower, but it finishes and answers correctly
    # (the fuzz harness asserts the answers; here we just require the
    # run to have completed with a sane clock).
    assert chaos.elapsed_us >= base.elapsed_us
