"""E3 — Figure 7: absolute GET latency, small messages, both machines.

Paper values for reference: GM ~19-20 µs uncached / ~13 µs cached at
1 B (rising to ~60/40 µs at 8 KB); LAPI ~10-12 / ~9-10 µs.
"""

from repro.experiments import fig7
from repro.workloads.micro import FIG7_SIZES


def test_fig7(benchmark, show):
    fig = benchmark.pedantic(
        lambda: fig7(sizes=FIG7_SIZES, reps=8),
        rounds=1, iterations=1)
    show(fig)
    rows = {r["size_bytes"]: r for r in fig.rows()}
    tiny, big = rows[1], rows[8192]
    # Cached below uncached everywhere.
    for r in fig.rows():
        assert r["gm_cache_us"] < r["gm_nocache_us"]
        assert r["lapi_cache_us"] < r["lapi_nocache_us"]
    # Absolute scale sanity vs the paper's axes.
    assert 14 <= tiny["gm_nocache_us"] <= 26
    assert 8 <= tiny["lapi_nocache_us"] <= 16
    assert big["gm_nocache_us"] <= 70
    assert big["lapi_nocache_us"] <= 35
    # Monotone growth with message size.
    assert big["gm_nocache_us"] > tiny["gm_nocache_us"]
