"""E6 — Figure 9a: DIS stressmark improvement on hybrid GM
(MareNostrum, 4 UPC threads per blade).

Paper bands: Pointer 30-60%, Update 11-22%, Neighborhood 10-20%,
Field 35-40%.  Our Field lands at 9-18%: the direction and the
GM-vs-LAPI asymmetry reproduce, the magnitude is limited by our
conservative polling model (see EXPERIMENTS.md).
"""

from benchmarks.conftest import GM_BENCH_SCALES
from repro.experiments import fig9


def test_fig9_gm(benchmark, show):
    fig = benchmark.pedantic(
        lambda: fig9("gm", scales=GM_BENCH_SCALES, seeds=(1, 2)),
        rounds=1, iterations=1)
    show(fig)
    for row in fig.rows():
        assert 20 <= row["pointer"] <= 65
        assert 9 <= row["update"] <= 28
        assert 8 <= row["neighborhood"] <= 25
        assert row["field"] >= 10
