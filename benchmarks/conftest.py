"""Shared benchmark configuration.

Benchmarks run each figure once (``pedantic, rounds=1``): the figures
are themselves repeated experiments with confidence intervals, and the
virtual-time results are deterministic — pytest-benchmark here
measures the *simulator's* wall-clock cost while the printed tables
carry the reproduced science.

Scales default to a truncated version of the paper's axes so the whole
suite finishes in a few minutes; set ``REPRO_FULL_SCALE=1`` to sweep
the full 2048-thread/512-node range (minutes per point).
"""

import os

import pytest

FULL = os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0")

#: Truncated sweeps for CI-speed benchmarking.
GM_BENCH_SCALES = [(8, 2), (32, 8), (128, 32)]
LAPI_BENCH_SCALES = [(4, 2), (32, 2), (128, 8)]
FIG8_BENCH_SCALES = [(8, 2), (32, 8), (128, 32), (512, 128)]
#: Remote-block counts for the bulk-pipeline sweep
#: (``bench_bulk_pipeline``).
BULK_BENCH_BLOCKS = [4, 16, 64]

if FULL:  # pragma: no cover - opt-in big sweep
    from repro.experiments import GM_SCALES, LAPI_SCALES

    GM_BENCH_SCALES = GM_SCALES
    LAPI_BENCH_SCALES = LAPI_SCALES
    FIG8_BENCH_SCALES = GM_SCALES
    BULK_BENCH_BLOCKS = [4, 16, 64, 256]


@pytest.fixture
def show():
    """Print a figure table under the benchmark output."""
    def _show(fig):
        print()
        print(fig.render())
        return fig
    return _show
