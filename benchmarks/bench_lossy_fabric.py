"""Lossy-fabric benchmark: repair-policy comparison under link traces.

Drives the open-loop KV traffic harness
(:mod:`repro.workloads.kv_traffic`) under time-evolving link
degradation traces (:mod:`repro.faults.trace`) and compares the four
repair policies (:mod:`repro.faults.policy`) on each trace shape:

* **per-policy FCT CDFs** (linkguardian-style): the full request
  population's flow-completion-time distribution, one CDF per
  (shape, policy) cell, read straight off the fixed-edge log-binned
  histograms so the curves are layout-invariant;
* **tail gates**: under the flapping trace, ``disable_and_repair``
  (detour around the sick link while it is repaired) must beat
  ``do_nothing`` at p99 — and every shape must actually hurt the
  ``do_nothing`` arm relative to the healthy baseline;
* an **invariance referee**: the same traced run merged from 1, 2 and
  4 shards on both backends (inproc + mp) must produce bit-identical
  histograms, per-client digests, per-link health totals and
  policy-decision digests.

Usage::

    PYTHONPATH=src python benchmarks/bench_lossy_fabric.py          # full
    PYTHONPATH=src python benchmarks/bench_lossy_fabric.py --quick  # CI smoke

Output lands in ``BENCH_lossy_fabric.json``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.campaign.artifacts import atomic_write_json
from repro.campaign.gate import (BaselineError, GateMetric,
                                 check_baseline)
from repro.faults.policy import POLICIES
from repro.faults.trace import COMPRESSED_TRACE_KW, make_trace
from repro.workloads.kv_traffic import (TrafficParams, TrafficResult,
                                        hist_cdf, hist_quantile,
                                        run_kv_traffic)

FULL_SHAPES = ("flap", "burst", "degrade", "gray")
QUICK_SHAPES = ("flap", "degrade", "gray")
#: Per-run request counts sized so the traffic spans the trace horizon
#: (32 clients x mean gap 2us -> ~625 requests per virtual ms).
FULL_REQUESTS = 320_000       # ~20 ms of traffic, the full horizon
QUICK_REQUESTS = 96_000       # ~6 ms against compressed traces
REFEREE_REQUESTS = 24_000

#: Quick mode compresses the trace shapes into the shorter traffic
#: window (shared with the campaign's lossy cells).
QUICK_TRACE_KW = COMPRESSED_TRACE_KW


def _row(res: TrafficResult, policy: str, wall_s: float) -> Dict:
    q = res.quantiles()
    pol = res.extra.get("policy") or {}
    return {
        "policy": policy,
        "requests": res.requests,
        "failures": sum(o["counts"]["failures"]
                        for o in res.extra["run"].outputs),
        "hit_rate": round(res.hit_rate, 4),
        "p50_us": round(q["p50_us"], 3),
        "p99_us": round(q["p99_us"], 3),
        "decisions": len(pol.get("decisions", [])),
        "decisions_digest": pol.get("digest", 0),
        "fct_cdf": hist_cdf(res.hist),
        "wall_s": round(wall_s, 3),
    }


def _params(requests: int, seed: int, trace_json: str = "",
            policy: str = "") -> TrafficParams:
    return TrafficParams(requests=requests, seed=seed, zipf_s=0.9,
                         link_trace=trace_json, repair_policy=policy)


def run_referee(seed: int = 13, trace_seed: int = 7) -> Dict:
    """The same flapping traced run merged from 1/2/4 shards on both
    backends must be bit-identical — histograms, digests, per-link
    health and the policy-decision digest."""
    tr = make_trace("flap", 8, trace_seed, **QUICK_TRACE_KW["flap"])
    p = _params(REFEREE_REQUESTS, seed, tr.to_json(),
                "disable_and_repair")
    ref = run_kv_traffic(p, 1)
    identical = True
    legs = []
    for nshards, mode in ((2, "inproc"), (4, "inproc"), (2, "mp")):
        res = run_kv_traffic(p, nshards, mode=mode)
        same = (np.array_equal(res.hist, ref.hist)
                and res.digests == ref.digests
                and res.extra["links"] == ref.extra["links"]
                and (res.extra["policy"]["digest"]
                     == ref.extra["policy"]["digest"]))
        identical = identical and same
        legs.append({"shards": nshards, "mode": mode,
                     "identical": same})
    return {
        "requests": ref.requests,
        "decisions": len(ref.extra["policy"]["decisions"]),
        "legs": legs,
        "identical_across_layouts": identical,
    }


def run_bench(quick: bool = False, nshards: int = 2, seed: int = 9,
              trace_seed: int = 7) -> Dict:
    shapes = QUICK_SHAPES if quick else FULL_SHAPES
    requests = QUICK_REQUESTS if quick else FULL_REQUESTS

    t0 = time.perf_counter()
    healthy = run_kv_traffic(_params(requests, seed), nshards)
    wall = time.perf_counter() - t0
    baseline = {
        "p50_us": round(hist_quantile(healthy.hist, 0.50), 3),
        "p99_us": round(hist_quantile(healthy.hist, 0.99), 3),
        "fct_cdf": hist_cdf(healthy.hist),
        "wall_s": round(wall, 3),
    }
    print(f"  healthy baseline: p50={baseline['p50_us']}us "
          f"p99={baseline['p99_us']}us")

    results: Dict[str, List[Dict]] = {}
    for shape in shapes:
        kw = QUICK_TRACE_KW[shape] if quick else {}
        tr = make_trace(shape, 8, trace_seed, **kw)
        trace_json = tr.to_json()
        rows = []
        for policy in POLICIES:
            p = _params(requests, seed, trace_json, policy)
            t0 = time.perf_counter()
            res = run_kv_traffic(p, nshards)
            row = _row(res, policy, time.perf_counter() - t0)
            rows.append(row)
            print(f"  {shape:8s} {policy:20s} "
                  f"p50={row['p50_us']:8.2f}us "
                  f"p99={row['p99_us']:9.2f}us  "
                  f"fail={row['failures']:4d} "
                  f"decisions={row['decisions']:3d}  "
                  f"({row['wall_s']:.1f}s)")
        results[shape] = rows

    referee = run_referee(trace_seed=trace_seed)
    print(f"  referee: {referee['requests']} requests x "
          f"{len(referee['legs']) + 1} layouts, identical="
          f"{referee['identical_across_layouts']}")
    return {
        "bench": "lossy_fabric",
        "mode": "quick" if quick else "full",
        "workload": {
            "nnodes": 8,
            "nclients": 32,
            "requests_per_cell": requests,
            "shards": nshards,
            "seed": seed,
            "trace_seed": trace_seed,
            "shapes": list(shapes),
            "policies": list(POLICIES),
        },
        "baseline": baseline,
        "results": results,
        "invariance": referee,
    }


def _policy_benefit(doc: Dict) -> List[Tuple[str, float]]:
    """do_nothing p99 / disable_and_repair p99 per shape: how much the
    repair policy buys at the tail.  Dimensionless — but quick mode
    runs compressed traces, so it is only comparable within a mode."""
    out = []
    for shape, rows in sorted(doc.get("results", {}).items()):
        by = {r["policy"]: r for r in rows}
        if ("do_nothing" in by and "disable_and_repair" in by
                and by["disable_and_repair"]["p99_us"] > 0):
            out.append((shape, by["do_nothing"]["p99_us"]
                        / by["disable_and_repair"]["p99_us"]))
    return out


#: ``--baseline`` regression gate (shared machinery in
#: repro.campaign.gate).  Quick and full mode run different traces
#: (compressed vs full horizon), so the metric is skipped with a note
#: when the modes differ rather than compared across them.
GATE_METRICS = (
    GateMetric("policy_benefit_p99", _policy_benefit,
               skip_cross_mode=True),
)


def check(report: Dict) -> List[str]:
    """Self-consistency gates (run in both modes)."""
    problems = []
    if not report["invariance"]["identical_across_layouts"]:
        problems.append("traced run differs across shard layouts")
    base_p99 = report["baseline"]["p99_us"]
    for shape, rows in report["results"].items():
        by = {r["policy"]: r for r in rows}
        if by["do_nothing"]["p99_us"] < base_p99:
            problems.append(
                f"{shape}: do_nothing p99 {by['do_nothing']['p99_us']} "
                f"below healthy baseline {base_p99} — trace not biting")
        for r in rows:
            if not r["fct_cdf"]:
                problems.append(f"{shape}/{r['policy']}: empty FCT CDF")
    flap = {r["policy"]: r for r in report["results"].get("flap", [])}
    if flap:
        dn = flap["do_nothing"]["p99_us"]
        dr = flap["disable_and_repair"]["p99_us"]
        if dr >= dn:
            problems.append(
                f"flap: disable_and_repair p99 {dr} did not beat "
                f"do_nothing p99 {dn}")
        if flap["disable_and_repair"]["decisions"] == 0:
            problems.append("flap: disable_and_repair never acted")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="reduced scale for CI smoke")
    ap.add_argument("--out", default="BENCH_lossy_fabric.json",
                    help="where to write the JSON report")
    ap.add_argument("--shards", type=int, default=2,
                    help="shard count for the measured runs")
    ap.add_argument("--seed", type=int, default=9)
    ap.add_argument("--trace-seed", type=int, default=7)
    ap.add_argument("--baseline", default=None,
                    help="committed BENCH_lossy_fabric.json to gate "
                         "against (>20%% regression fails; missing or "
                         "corrupt baseline is an error, not a skip)")
    args = ap.parse_args(argv)

    print(f"lossy-fabric benchmark "
          f"({'quick' if args.quick else 'full'} scale)")
    report = run_bench(quick=args.quick, nshards=args.shards,
                       seed=args.seed, trace_seed=args.trace_seed)
    atomic_write_json(args.out, report)
    print(f"wrote {args.out}")

    problems = check(report)
    if args.baseline:
        try:
            gate = check_baseline(report, args.baseline, GATE_METRICS)
        except BaselineError as exc:
            print(f"FAIL: {exc}")
            return 1
        for note in gate.notes:
            print(f"  note: {note}")
        problems.extend(gate.problems)
    for p in problems:
        print(f"FAIL: {p}")
    return 1 if problems else 0


# ---------------------------------------------------------------------------
# pytest entry point (collected only when explicitly requested)
# ---------------------------------------------------------------------------

def test_lossy_fabric_quick():
    """Smoke: quick scale, all self-consistency gates hold."""
    report = run_bench(quick=True)
    assert not check(report)


if __name__ == "__main__":
    sys.exit(main())
