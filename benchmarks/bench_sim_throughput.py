"""Meta-benchmark: the simulator's own event throughput.

Not a paper figure — this tracks the wall-clock cost of the substrate
itself (events/second of the discrete-event kernel under a realistic
workload), so regressions in the hot path (heap ops, process stepping,
resource bookkeeping) show up in benchmark CI.
"""

from repro.network import GM_MARENOSTRUM
from repro.workloads import PointerParams, run_pointer


def test_sim_event_throughput(benchmark):
    params = PointerParams(
        machine=GM_MARENOSTRUM, nthreads=64, threads_per_node=4,
        nelems=1 << 13, hops=24, seed=1)

    def run():
        return run_pointer(params)

    result = benchmark(run)
    events = result.run.sim_events
    assert events > 10_000
    per_sec = events / benchmark.stats["mean"]
    per_op = events / result.run.metrics.remote_ops
    print(f"\n  simulator throughput: {per_sec:,.0f} events/s "
          f"({events} events per run)")
    print(f"  event efficiency: {per_op:.1f} events per remote op "
          f"({result.run.metrics.remote_ops} remote ops)")
    # Regression guard, generous for slow CI machines.
    assert per_sec > 5_000
