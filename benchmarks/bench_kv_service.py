"""KV service-level benchmark: Zipfian traffic FCT vs. key skew.

Drives the open-loop KV traffic harness
(:mod:`repro.workloads.kv_traffic`) at two Zipf skews and reports the
service-level view the paper's one-sided-vs-AM comparison predicts:

* **p50/p99 flow-completion time** of the whole request population and
  of the cache-hit (one-sided) and cache-miss (AM/RPC) subpopulations
  separately — the hit path skips dispatch + SVD lookup + handler CPU,
  so its quantiles sit strictly below the miss path's;
* **address-cache hit rate vs. skew** — a hotter key distribution
  concentrates buckets into the per-client LRU, so ``s=1.2`` must
  beat ``s=0.9``;
* a **layout-invariance referee** at reduced scale: the same traffic
  merged from 1 and 2 shards must produce bit-identical histograms,
  counts and per-client digests.

Full mode sustains >= 1M simulated requests across the two skews on
the 2-shard core; ``--quick`` is the CI smoke (~50k requests).

Usage::

    PYTHONPATH=src python benchmarks/bench_kv_service.py          # full
    PYTHONPATH=src python benchmarks/bench_kv_service.py --quick  # CI smoke

Output lands in ``BENCH_kv_service.json``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.campaign.artifacts import atomic_write_json
from repro.campaign.gate import (BaselineError, GateMetric,
                                 check_baseline)
from repro.workloads.kv_traffic import (TrafficParams, TrafficResult,
                                        run_kv_traffic)

SKEWS = (0.9, 1.2)
FULL_REQUESTS = 600_000      # per skew -> 1.2M total
QUICK_REQUESTS = 25_000      # per skew -> 50k total
REFEREE_REQUESTS = 8_000


def _row(p: TrafficParams, res: TrafficResult, nshards: int,
         wall_s: float) -> Dict:
    q = res.quantiles()
    return {
        "zipf_s": p.zipf_s,
        "shards": nshards,
        "requests": res.requests,
        "gets": res.gets,
        "puts": res.puts,
        "conns": res.conns,
        "hit_rate": round(res.hit_rate, 4),
        "p50_us": round(q["p50_us"], 3),
        "p99_us": round(q["p99_us"], 3),
        "hit_p50_us": round(q["hit_p50_us"], 3),
        "hit_p99_us": round(q["hit_p99_us"], 3),
        "miss_p50_us": round(q["miss_p50_us"], 3),
        "miss_p99_us": round(q["miss_p99_us"], 3),
        "final_clock_us": res.now,
        "events": res.events,
        "wall_s": round(wall_s, 3),
        "requests_per_wall_sec": round(res.requests / wall_s)
        if wall_s > 0 else None,
    }


def run_referee(seed: int = 11) -> Dict:
    """Reduced-scale invariance check: shards=1 vs shards=2 must merge
    to bit-identical histograms, counts and digests."""
    p = TrafficParams(requests=REFEREE_REQUESTS, zipf_s=1.05, seed=seed)
    one = run_kv_traffic(p, 1)
    two = run_kv_traffic(p, 2)
    identical = (np.array_equal(one.hist, two.hist)
                 and np.array_equal(one.hist_hit, two.hist_hit)
                 and np.array_equal(one.hist_miss, two.hist_miss)
                 and one.digests == two.digests
                 and one.now == two.now)
    return {
        "requests": one.requests,
        "identical_across_layouts": identical,
    }


def run_bench(quick: bool = False, nshards: int = 2,
              seed: int = 7) -> Dict:
    per_skew = QUICK_REQUESTS if quick else FULL_REQUESTS
    rows: List[Dict] = []
    for s in SKEWS:
        p = TrafficParams(requests=per_skew, zipf_s=s, seed=seed)
        t0 = time.perf_counter()
        res = run_kv_traffic(p, nshards)
        wall = time.perf_counter() - t0
        row = _row(p, res, nshards, wall)
        rows.append(row)
        print(f"  s={s}: {row['requests']:8d} requests  "
              f"hit_rate={row['hit_rate']:.3f}  "
              f"p50={row['p50_us']:.1f}us p99={row['p99_us']:.1f}us  "
              f"(hit p50 {row['hit_p50_us']:.1f} / miss p50 "
              f"{row['miss_p50_us']:.1f})  {row['wall_s']:.1f}s")
    referee = run_referee()
    print(f"  referee: {referee['requests']} requests, "
          f"layouts identical={referee['identical_across_layouts']}")
    p0 = TrafficParams()
    return {
        "bench": "kv_service",
        "mode": "quick" if quick else "full",
        "workload": {
            "nnodes": p0.nnodes,
            "nclients": p0.nclients,
            "nkeys": p0.nkeys,
            "nbuckets": p0.nbuckets,
            "cache_capacity": p0.cache_capacity,
            "put_frac": p0.put_frac,
            "mean_gap_us": p0.mean_gap_us,
            "machine": p0.machine,
            "requests_per_skew": per_skew,
            "shards": nshards,
            "seed": seed,
        },
        "results": rows,
        "total_requests": sum(r["requests"] for r in rows),
        "invariance": referee,
    }


def _hit_rates(doc: Dict) -> List[Tuple[str, float]]:
    return [(f"s={r['zipf_s']}", r["hit_rate"])
            for r in doc.get("results", [])]


def _one_sided_speedup(doc: Dict) -> List[Tuple[str, float]]:
    """miss_p50/hit_p50 per skew: how much the one-sided (cache-hit)
    path beats the AM path — dimensionless, stable across scales."""
    return [(f"s={r['zipf_s']}", r["miss_p50_us"] / r["hit_p50_us"])
            for r in doc.get("results", []) if r["hit_p50_us"] > 0]


#: ``--baseline`` regression gate (shared machinery in
#: repro.campaign.gate).  Both metrics are dimensionless and hold
#: within ~2% between quick and full scale, so CI can gate its quick
#: run against the committed full-mode baseline.
GATE_METRICS = (
    GateMetric("hit_rate", _hit_rates),
    GateMetric("one_sided_speedup", _one_sided_speedup),
)


def check(report: Dict) -> List[str]:
    """Self-consistency gates (run in both modes)."""
    problems = []
    rows = {r["zipf_s"]: r for r in report["results"]}
    lo, hi = rows[min(rows)], rows[max(rows)]
    if not report["invariance"]["identical_across_layouts"]:
        problems.append("traffic merge differs across shard layouts")
    if hi["hit_rate"] <= lo["hit_rate"]:
        problems.append(
            f"hit rate did not rise with skew "
            f"({lo['hit_rate']} -> {hi['hit_rate']})")
    for r in report["results"]:
        if r["hit_p50_us"] >= r["miss_p50_us"]:
            problems.append(
                f"s={r['zipf_s']}: one-sided p50 {r['hit_p50_us']} not "
                f"below AM p50 {r['miss_p50_us']}")
    if report["mode"] == "full" and report["total_requests"] < 1_000_000:
        problems.append(
            f"full mode sustained only {report['total_requests']} "
            "requests (< 1M)")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="reduced scale for CI smoke")
    ap.add_argument("--out", default="BENCH_kv_service.json",
                    help="where to write the JSON report")
    ap.add_argument("--shards", type=int, default=2,
                    help="shard count for the measured runs")
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--baseline", default=None,
                    help="committed BENCH_kv_service.json to gate "
                         "against (>20%% regression fails; missing or "
                         "corrupt baseline is an error, not a skip)")
    args = ap.parse_args(argv)

    print(f"kv-service benchmark "
          f"({'quick' if args.quick else 'full'} scale)")
    report = run_bench(quick=args.quick, nshards=args.shards,
                       seed=args.seed)
    atomic_write_json(args.out, report)
    print(f"wrote {args.out}")

    problems = check(report)
    if args.baseline:
        try:
            gate = check_baseline(report, args.baseline, GATE_METRICS)
        except BaselineError as exc:
            print(f"FAIL: {exc}")
            return 1
        for note in gate.notes:
            print(f"  note: {note}")
        problems.extend(gate.problems)
    for p in problems:
        print(f"FAIL: {p}")
    return 1 if problems else 0


# ---------------------------------------------------------------------------
# pytest entry point (collected only when explicitly requested)
# ---------------------------------------------------------------------------

def test_kv_service_quick():
    """Smoke: quick scale, all self-consistency gates hold."""
    report = run_bench(quick=True)
    assert not check(report)


if __name__ == "__main__":
    sys.exit(main())
