"""Ablation — cache eviction policy (LRU vs FIFO vs RANDOM).

Section 4.5 frames cache size as "a compromise between memory usage
and speedup"; the eviction policy decides how gracefully a small cache
degrades.  On Pointer's uniform-random node stream no policy can beat
another by much (no recency structure to exploit); on Neighborhood's
two-partner stream LRU/FIFO/RANDOM all keep the partners resident.
The interesting case is a *skewed* stream, where LRU must win — so we
run Pointer with a hot subset of nodes.
"""

from dataclasses import replace

from repro.core import EvictionPolicy
from repro.experiments.figures import _pointer_params
from repro.network import GM_MARENOSTRUM
from repro.workloads import run_pointer
from repro.workloads.dis.pointer import PointerParams


def _hit_rate(policy: EvictionPolicy, nelems: int) -> float:
    params = replace(
        _pointer_params(64, 16, GM_MARENOSTRUM, seed=1, capacity=8),
        cache_policy=policy, nelems=nelems, hops=64)
    return run_pointer(params).hit_rate


def test_eviction_policy_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {p.value: _hit_rate(p, nelems=1 << 14)
                 for p in EvictionPolicy},
        rounds=1, iterations=1)
    print()
    print("Eviction-policy ablation (Pointer, 64 threads / 16 nodes, "
          "8-entry cache):")
    for name, hr in results.items():
        print(f"  {name:>7}: hit rate {hr:.3f}")
    # All policies function and stay within a plausible range.
    for hr in results.values():
        assert 0.0 <= hr <= 1.0
    # On a uniform stream the spread between policies is modest —
    # the paper's choice of a plain hash table is justified.
    spread = max(results.values()) - min(results.values())
    assert spread < 0.25
