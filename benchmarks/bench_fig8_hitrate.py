"""E4/E5 — Figure 8: address-cache hit rate vs scale, capacities
4/10/100.

Pointer (8a) touches random nodes over the whole machine, so its
working set grows with the node count and small caches collapse early;
Neighborhood (8b) only ever talks to two partner threads, so a 4-entry
cache is as good as a 100-entry one at any scale.
"""

from benchmarks.conftest import FIG8_BENCH_SCALES
from repro.experiments import fig8


def test_fig8a_pointer(benchmark, show):
    fig = benchmark.pedantic(
        lambda: fig8("pointer", scales=FIG8_BENCH_SCALES, seed=1),
        rounds=1, iterations=1)
    show(fig)
    for cap in (4, 10, 100):
        series = fig.series(f"hit_cap{cap}")
        assert series[0] > series[-1], "hit rate must degrade with scale"
    last = fig.rows()[-1]
    assert last["hit_cap4"] < last["hit_cap10"] < last["hit_cap100"]


def test_fig8b_neighborhood(benchmark, show):
    fig = benchmark.pedantic(
        lambda: fig8("neighborhood", scales=FIG8_BENCH_SCALES, seed=1),
        rounds=1, iterations=1)
    show(fig)
    for cap in (4, 10, 100):
        series = fig.series(f"hit_cap{cap}")
        assert min(series) > 0.85
        assert max(series) - min(series) < 0.08
