"""Ablation — pin-everything vs chunked pinning (section 3.1).

The paper's greedy policy pins the *whole* object on first touch; the
"more elaborated technique" pins chunks on demand, respecting per-call
and total registration limits, "obtaining similar results".  We verify
both claims: performance is similar, while chunked pinning registers
far less memory for sparse access patterns.
"""

from dataclasses import replace

from repro.core import PinningPolicy
from repro.network import GM_MARENOSTRUM
from repro.workloads import PointerParams, run_pointer


def test_pinning_policy_ablation(benchmark):
    def run_both():
        out = {}
        for policy in (PinningPolicy.PIN_EVERYTHING, PinningPolicy.CHUNKED):
            params = PointerParams(
                machine=GM_MARENOSTRUM, nthreads=16, threads_per_node=4,
                nelems=1 << 18, hops=24, seed=1,
                pinning_policy=policy, pin_chunk_bytes=64 * 1024,
            )
            cached = run_pointer(params)
            baseline = run_pointer(replace(params, cache_enabled=False))
            assert cached.check == baseline.check
            out[policy.value] = {
                "improvement_pct": 100 * (1 - cached.elapsed_us
                                          / baseline.elapsed_us),
                "elapsed_us": cached.elapsed_us,
            }
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print("Pinning-policy ablation (Pointer, 16 threads, 2 MB array):")
    for name, r in results.items():
        print(f"  {name:>16}: improvement {r['improvement_pct']:5.1f}%  "
              f"elapsed {r['elapsed_us']:9.1f}us")
    a = results["pin-everything"]["improvement_pct"]
    b = results["chunked"]["improvement_pct"]
    # "obtaining similar results" — within a few points of each other.
    assert abs(a - b) < 8.0
    assert a > 10 and b > 10
