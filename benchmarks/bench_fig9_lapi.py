"""E7 — Figure 9b: DIS stressmark improvement on hybrid LAPI
(Power5 cluster, up to 16 UPC threads per node).

Pointer/Update/Neighborhood are "comparable to the measurements on
MareNostrum"; Field is the outlier — LAPI overlaps communication and
computation, so the address cache has nothing to fix there.
"""

from benchmarks.conftest import LAPI_BENCH_SCALES
from repro.experiments import fig9


def test_fig9_lapi(benchmark, show):
    fig = benchmark.pedantic(
        lambda: fig9("lapi", scales=LAPI_BENCH_SCALES, seeds=(1, 2)),
        rounds=1, iterations=1)
    show(fig)
    for row in fig.rows():
        assert row["pointer"] >= 10
        assert 4 <= row["update"] <= 28
        assert 4 <= row["neighborhood"] <= 25
        assert abs(row["field"]) < 8, "LAPI Field must stay flat (4.7)"
