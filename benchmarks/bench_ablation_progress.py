"""Ablation — polling vs interrupt progress on the Field stressmark.

The paper attributes Field's GM-only gains to missing communication/
computation overlap (sections 4.6 vs 4.7).  This ablation isolates the
mechanism: run Field on the *same* GM cost model, flipping only the
progress engine.  If the explanation is right, the interrupt variant's
improvement must collapse toward LAPI-like levels even though every
other GM parameter (bandwidth, overheads, RDMA costs) is unchanged.
"""

from dataclasses import replace as dc_replace

from repro.network import GM_MARENOSTRUM, INTERRUPT
from repro.workloads import FieldParams, run_field


def _improvement(machine) -> float:
    kw = dict(machine=machine, nthreads=32, threads_per_node=4,
              seed=1, nelems=32 * 1024, ntokens=8)
    on = run_field(FieldParams(cache_enabled=True, **kw))
    off = run_field(FieldParams(cache_enabled=False, **kw))
    assert on.check == off.check
    return 100 * (1 - on.elapsed_us / off.elapsed_us)


def test_progress_engine_ablation(benchmark):
    gm_interrupt = dc_replace(
        GM_MARENOSTRUM,
        transport=GM_MARENOSTRUM.transport.with_overrides(
            progress=INTERRUPT))

    def run_both():
        return {
            "polling (real GM)": _improvement(GM_MARENOSTRUM),
            "interrupt (ablated GM)": _improvement(gm_interrupt),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print("Progress-engine ablation (Field, 32 threads / 8 nodes):")
    for name, imp in results.items():
        print(f"  {name:>22}: improvement {imp:5.1f}%")
    polling = results["polling (real GM)"]
    interrupt = results["interrupt (ablated GM)"]
    # The pathology — and hence the cache's Field win — needs polling.
    assert polling > 10.0
    assert interrupt < polling / 2
