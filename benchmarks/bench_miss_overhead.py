"""E8 — section 6's overhead claim.

"The overhead of unsuccessful attempts to cache remote addresses is
relatively small, typically 1.5% and never worse than 2%."

We force every attempt to be unsuccessful (capacity-0 cache: lookups,
piggybacks and pinning all happen, nothing is ever reused) and compare
against the cache-disabled baseline.
"""

from repro.experiments import miss_overhead


def test_miss_overhead(benchmark, show):
    fig = benchmark.pedantic(
        lambda: miss_overhead(threads=32, nodes=8, seeds=(1, 2, 3, 4)),
        rounds=1, iterations=1)
    show(fig)
    overheads = [r["overhead_pct"] for r in fig.rows()]
    assert max(overheads) <= 2.5
    assert sum(overheads) / len(overheads) <= 2.0
