"""Wall-clock benchmark of the discrete-event core itself.

Not a paper figure — this measures the substrate: events/second of the
pooled fast core (``Simulator(pooled=True)``) against the legacy
reference core (``pooled=False``) on a fixed DIS-mix workload, at
64/256/1024 simulated threads.

The mix is the *Field pathology's* message pattern (§4.6) expressed
directly on the simulator: jittered compute slices, a relaxed AM PUT
per token, blocking boundary-probe AM GET round trips through a
per-node NIC resource (four threads contending for one injection
slot), and a closing barrier.  Driving the pattern at the sim layer —
rather than through the full runtime data plane — isolates the event
core, which is the artifact under test; full-stack bit-identity of the
two cores is refereed separately by the PR 2 fuzz oracle (the
determinism leg below and ``tests/sim/test_pooled_determinism.py``).

Every measured run asserts that both cores produced *bit-identical*
schedules: the same per-token completion trace (values and order), the
same event count, the same final clock.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim_core.py            # full
    PYTHONPATH=src python benchmarks/bench_sim_core.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_sim_core.py \
        --baseline BENCH_sim_core.json                            # regression gate

Output lands in ``BENCH_sim_core.json`` (see docs/PERFORMANCE.md for
how to read it).  Full mode fails unless the 256-thread mix shows a
>= 2x events/sec speedup; ``--baseline`` fails on a >20% regression of
the measured speedup (the dimensionless ratio travels across machines,
absolute events/sec do not).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.campaign.artifacts import atomic_write_json
from repro.campaign.gate import BaselineError, GateMetric
from repro.campaign.gate import check_baseline as shared_check_baseline
from repro.network.params import GM_MARENOSTRUM
from repro.sim.resource import Resource
from repro.sim.simulator import Simulator
from repro.workloads.sharded import (field_nnodes, run_field_reference,
                                     run_field_sharded)

#: MareNostrum blades: four threads share one NIC (section 4.6).
THREADS_PER_NODE = 4

THREAD_SWEEP = (64, 256, 1024)

#: Sharded Field leg: thread counts for the 1->N shard scaling row and
#: the big sweep rows (full mode only; the 10k–100k-thread territory).
SHARD_SCALING_THREADS = {True: 256, False: 1024}
SHARD_SWEEP_THREADS = (4096, 16384)

#: The fixed mix: (ntokens, boundary probes per token).
FULL_MIX = (8, 4)
QUICK_MIX = (3, 2)

CORPUS = os.path.join(os.path.dirname(__file__), os.pardir,
                      "tests", "fuzz", "corpus", "seed0-22ops.json")


# ---------------------------------------------------------------------------
# The DIS-mix workload
# ---------------------------------------------------------------------------

class _MixBarrier:
    """Counter barrier releasing through one retained (unpooled) event."""

    __slots__ = ("sim", "n", "count", "gate", "cost")

    def __init__(self, sim: Simulator, n: int, cost: float) -> None:
        self.sim = sim
        self.n = n
        self.count = 0
        self.cost = cost
        self.gate = sim.event("dis-mix-barrier")

    def arrive(self):
        self.count += 1
        gate = self.gate
        if self.count == self.n:
            self.count = 0
            self.gate = self.sim.event("dis-mix-barrier")
            gate.succeed(delay=self.cost)
        return gate


def _jitter(a: int, b: int) -> float:
    """Deterministic hash jitter in [0, 1) — no RNG object on the hot
    path, same sequence in both cores by construction."""
    return ((a * 2654435761 + b * 97003 + 12345) & 1023) / 1024.0


def _dis_thread(sim: Simulator, tid: int, nic: Resource,
                barrier: _MixBarrier, ntokens: int, probes: int,
                trace: List[Tuple[float, int, int]]):
    t = GM_MARENOSTRUM.transport
    wire = GM_MARENOSTRUM.wire_base_us
    o_sw = t.o_sw_us
    o_send = t.o_send_us
    handler = t.svd_lookup_us + t.handler_cpu_us
    for tok in range(ntokens):
        # Scan slice over this thread's block, jittered like Field's
        # data-dependent token matching.
        yield sim.sleep(2.0 + 3.0 * _jitter(tid, tok))
        # Relaxed AM PUT of the scan result (initiator cost only).
        yield sim.sleep(o_sw)
        yield nic.acquire()
        yield sim.sleep(o_send)
        nic.release()
        # Boundary probes: blocking AM GET round trips.
        for _ in range(probes):
            yield sim.sleep(o_sw)             # initiator software
            yield nic.acquire()               # NIC injection slot
            yield sim.sleep(o_send)
            nic.release()
            yield sim.sleep(wire)             # request flight
            yield sim.sleep(0.0)              # target poll dispatch
            yield sim.sleep(handler)          # header handler + SVD
            yield sim.sleep(wire)             # reply flight
            yield sim.sleep(t.o_recv_us)      # initiator receive
        trace.append((sim.now, tid, tok))
    yield barrier.arrive()
    yield sim.sleep(o_sw)                     # barrier exit software
    trace.append((sim.now, tid, -1))


def run_mix(nthreads: int, pooled: bool, ntokens: int,
            probes: int) -> Tuple[List[Tuple[float, int, int]], int,
                                  float, float]:
    """One run; returns (trace, events, final_clock, wall_seconds)."""
    sim = Simulator(pooled=pooled)
    nnodes = max(1, nthreads // THREADS_PER_NODE)
    nics = [Resource(sim, capacity=1, name=f"nic{i}")
            for i in range(nnodes)]
    barrier = _MixBarrier(sim, nthreads, GM_MARENOSTRUM.wire_base_us)
    trace: List[Tuple[float, int, int]] = []
    for tid in range(nthreads):
        sim.process(_dis_thread(sim, tid, nics[tid // THREADS_PER_NODE],
                                barrier, ntokens, probes, trace),
                    name=f"dis{tid}")
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return trace, sim.events_processed, sim.now, wall


def measure(nthreads: int, ntokens: int, probes: int,
            repeats: int) -> Dict:
    """Best-of-``repeats`` for both cores + bit-identity assertions."""
    best: Dict[bool, float] = {}
    ref: Dict[bool, Tuple] = {}
    for pooled in (True, False):
        for _ in range(repeats):
            trace, events, final_t, wall = run_mix(
                nthreads, pooled, ntokens, probes)
            if pooled not in best or wall < best[pooled]:
                best[pooled] = wall
            ref[pooled] = (trace, events, final_t)
    trace_p, events_p, t_p = ref[True]
    trace_l, events_l, t_l = ref[False]
    # Bit-identical schedules: same dispatch order, same clock values,
    # same number of kernel events.
    assert trace_p == trace_l, (
        f"nt={nthreads}: pooled/legacy completion traces diverge")
    assert events_p == events_l, (
        f"nt={nthreads}: event counts diverge ({events_p} vs {events_l})")
    assert t_p == t_l, (
        f"nt={nthreads}: final clocks diverge ({t_p} vs {t_l})")
    pooled_eps = events_p / best[True]
    legacy_eps = events_l / best[False]
    return {
        "nthreads": nthreads,
        "events": events_p,
        "final_clock_us": t_p,
        "pooled_wall_s": round(best[True], 6),
        "legacy_wall_s": round(best[False], 6),
        "pooled_events_per_sec": round(pooled_eps),
        "legacy_events_per_sec": round(legacy_eps),
        "speedup": round(pooled_eps / legacy_eps, 3),
        "identical_schedule": True,
    }


# ---------------------------------------------------------------------------
# Sharded PDES leg: aggregate throughput + referee identity
# ---------------------------------------------------------------------------

def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def measure_sharded(nthreads: int, nshards: int, ntokens: int,
                    probes: int, reference: Optional[Dict]) -> Dict:
    """One sharded Field run (mp backend for ``nshards > 1``); when a
    pooled ``reference`` result is supplied, assert the merged trace,
    digests and clock are bit-identical to it."""
    mode = "inproc" if nshards == 1 else "mp"
    res = run_field_sharded(nthreads, nshards, ntokens=ntokens,
                            probes=probes, mode=mode)
    run = res["run"]
    identical = None
    if reference is not None:
        identical = (res["trace"] == reference["trace"]
                     and res["field"] == reference["field"]
                     and res["digest"] == reference["digest"]
                     and res["now"] == reference["now"])
        assert identical, (
            f"nt={nthreads} shards={nshards}: sharded run diverged "
            "from the pooled reference")
    return {
        "nthreads": nthreads,
        "shards": nshards,
        "mode": mode,
        "events": run.events,
        "final_clock_us": res["now"],
        "wall_s": round(run.wall_s, 6),
        "aggregate_events_per_sec": round(run.events_per_sec),
        "sync_rounds": run.rounds,
        "msgs_routed": run.msgs_routed,
        "channel_bytes": sum(m.channel_bytes for m in run.metrics),
        "stall_grains": sum(m.stall_grains for m in run.metrics),
        "identical_to_reference": identical,
    }


def run_sharded_leg(quick: bool,
                    max_shards: Optional[int] = None) -> Dict:
    """Shard-scaling rows at the mix's scaling thread count, plus the
    big-thread sweep rows (full mode) at the largest shard count."""
    ntokens, probes = QUICK_MIX if quick else FULL_MIX
    nthreads = SHARD_SCALING_THREADS[quick]
    top = max_shards or (2 if quick else 4)
    counts = sorted({c for c in (1, 2, 4, top)
                     if c <= min(top, field_nnodes(nthreads))})
    reference = run_field_reference(nthreads, ntokens=ntokens,
                                    probes=probes)
    rows = []
    for s in counts:
        r = measure_sharded(nthreads, s, ntokens, probes, reference)
        rows.append(r)
        print(f"  field nt={nthreads:5d} shards={s}: "
              f"{r['events']:8d} events  "
              f"{r['aggregate_events_per_sec']:>9,} ev/s  "
              f"rounds={r['sync_rounds']:4d}  "
              f"referee={'ok' if r['identical_to_reference'] else '??'}")
    if not quick:
        for nt in SHARD_SWEEP_THREADS:
            r = measure_sharded(nt, counts[-1], ntokens, probes, None)
            rows.append(r)
            print(f"  field nt={nt:5d} shards={counts[-1]}: "
                  f"{r['events']:8d} events  "
                  f"{r['aggregate_events_per_sec']:>9,} ev/s  "
                  f"rounds={r['sync_rounds']:4d}")
    cpus = _cpus()
    # The "aggregate ev/s rises 1 -> N shards" claim needs one core
    # per shard; on smaller hosts the mp backend time-slices and the
    # sync rounds are pure overhead, so the check records itself as
    # skipped rather than asserting something the hardware cannot show.
    scaling_checked = cpus >= counts[-1] and len(counts) > 1
    scaling_ok = None
    if scaling_checked:
        first = next(r for r in rows if r["shards"] == counts[0])
        last = next(r for r in rows
                    if r["shards"] == counts[-1]
                    and r["nthreads"] == nthreads)
        scaling_ok = (last["aggregate_events_per_sec"]
                      > first["aggregate_events_per_sec"])
    return {
        "scaling_nthreads": nthreads,
        "shard_counts": counts,
        "cpus": cpus,
        "results": rows,
        "scaling_checked": scaling_checked,
        "scaling_ok": scaling_ok,
    }


# ---------------------------------------------------------------------------
# Determinism leg: the PR 2 fuzz oracle as referee
# ---------------------------------------------------------------------------

def run_determinism(corpus_path: str = CORPUS) -> Dict:
    """Replay one fuzz-corpus program through the *full* runtime under
    both cores with the flight recorder on.

    Checks: byte-identical flight-recorder JSONL, identical final
    memory of every live object, and zero divergences from the
    flat-memory oracle on the pooled core.
    """
    import tempfile

    import numpy as np

    from dataclasses import replace as dc_replace

    from repro.obs.events import EventLog
    from repro.obs.export import dump_jsonl
    from repro.runtime.runtime import Runtime
    from repro.testing.oracle import run_oracle
    from repro.testing.program import Program, live_objects_at_end
    from repro.testing.runner import _Driver, config_by_name, run_config

    with open(corpus_path, "r", encoding="utf-8") as fh:
        program = Program.loads(fh.read())
    point = config_by_name("gm-base")

    blobs: List[bytes] = []
    finals: List[Dict] = []
    for pooled in (True, False):
        events = EventLog()
        cfg = dc_replace(
            point.runtime_config(program.nthreads, seed=program.seed or 0),
            events=events)
        rt = Runtime(cfg, sim=Simulator(pooled=pooled))
        driver = _Driver(rt, program)
        rt.spawn(driver.kernel)
        rt.run()
        with tempfile.NamedTemporaryFile(suffix=".jsonl",
                                         delete=False) as tmp:
            path = tmp.name
        try:
            dump_jsonl(events, path)
            with open(path, "rb") as fh:
                blobs.append(fh.read())
        finally:
            os.unlink(path)
        finals.append({obj_id: np.array(driver.objs[obj_id].data,
                                        copy=True)
                       for obj_id in live_objects_at_end(program)
                       if obj_id in driver.objs})

    identical_jsonl = blobs[0] == blobs[1]
    identical_memory = (set(finals[0]) == set(finals[1]) and all(
        np.array_equal(finals[0][k], finals[1][k]) for k in finals[0]))
    divergences = run_config(program, point, run_oracle(program))
    return {
        "corpus": os.path.basename(corpus_path),
        "config": point.name,
        "flight_recorder_bytes": len(blobs[0]),
        "identical_jsonl": identical_jsonl,
        "identical_final_memory": identical_memory,
        "oracle_divergences": len(divergences),
    }


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

def run_bench(quick: bool = False,
              repeats: Optional[int] = None,
              max_shards: Optional[int] = None) -> Dict:
    ntokens, probes = QUICK_MIX if quick else FULL_MIX
    if repeats is None:
        repeats = 2 if quick else 3
    results = []
    for nt in THREAD_SWEEP:
        r = measure(nt, ntokens, probes, repeats)
        results.append(r)
        print(f"  nt={nt:5d}: {r['events']:7d} events  "
              f"pooled={r['pooled_events_per_sec']:>9,} ev/s  "
              f"legacy={r['legacy_events_per_sec']:>9,} ev/s  "
              f"speedup={r['speedup']:.2f}x")
    sharded = run_sharded_leg(quick, max_shards=max_shards)
    determinism = run_determinism()
    print(f"  determinism: corpus={determinism['corpus']} "
          f"jsonl_identical={determinism['identical_jsonl']} "
          f"memory_identical={determinism['identical_final_memory']} "
          f"oracle_divergences={determinism['oracle_divergences']}")
    speedup_256 = next(r["speedup"] for r in results
                       if r["nthreads"] == 256)
    # Throughput trend across the sweep: events/sec at the largest
    # thread count relative to the smallest.  A per-event core should
    # hold this near (or above) 1.0; a slide below it is the scaling
    # pathology the sharded core exists to attack, so the baseline
    # gate tracks it explicitly.
    eps_trend = (results[-1]["pooled_events_per_sec"]
                 / results[0]["pooled_events_per_sec"])
    return {
        "bench": "sim_core",
        "mode": "quick" if quick else "full",
        "cpus": _cpus(),
        "workload": {
            "pattern": "dis-field-mix",
            "machine": GM_MARENOSTRUM.name,
            "threads_per_node": THREADS_PER_NODE,
            "ntokens": ntokens,
            "boundary_probes": probes,
            "repeats": repeats,
        },
        "results": results,
        "speedup_256": speedup_256,
        "pooled_eps_trend": round(eps_trend, 3),
        "sharded": sharded,
        "determinism": determinism,
    }


def _speedup_by_threads(doc: Dict) -> List[Tuple[str, float]]:
    return [(f"nt={r['nthreads']}", r["speedup"])
            for r in doc.get("results", [])]


def _eps_trend(doc: Dict) -> List[Tuple[str, float]]:
    """Events/sec trend across the thread sweep: eps(largest)/
    eps(smallest).  The speedup ratio can stay flat while absolute
    throughput collapses at high thread counts (both cores slowing
    together) — this dimensionless ratio catches exactly that."""
    if "pooled_eps_trend" in doc:
        return [("trend", doc["pooled_eps_trend"])]
    rows = doc.get("results", [])
    if len(rows) < 2:
        return []
    return [("trend", rows[-1]["pooled_events_per_sec"]
             / rows[0]["pooled_events_per_sec"])]


#: The >20% regression gate, shared machinery in repro.campaign.gate:
#: dimensionless ratios only (speedup, throughput trend) — they travel
#: across machines, absolute events/sec does not.  Cross-mode runs (CI
#: gates --quick against the committed full report) widen the
#: tolerance to 35%: the quick mix is structurally more
#: barrier-dominated, so its ratios sit lower with zero regression.
GATE_METRICS = (
    GateMetric("speedup", _speedup_by_threads),
    GateMetric("pooled_eps_trend", _eps_trend),
)


def check_baseline(report: Dict, baseline_path: str,
                   tolerance: float = 0.20) -> List[str]:
    """Gate this run against a committed baseline; raises
    :class:`BaselineError` if the baseline is missing or corrupt."""
    res = shared_check_baseline(report, baseline_path, GATE_METRICS,
                                tolerance=tolerance)
    for note in res.notes:
        print(f"  note: {note}")
    return res.problems


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small mix for CI smoke (no 2x gate)")
    ap.add_argument("--out", default="BENCH_sim_core.json",
                    help="where to write the JSON report")
    ap.add_argument("--baseline", default=None,
                    help="committed BENCH_sim_core.json to gate against")
    ap.add_argument("--repeats", type=int, default=None,
                    help="wall-clock repeats per (threads, core) cell")
    ap.add_argument("--shards", type=int, default=None,
                    help="largest shard count for the sharded Field "
                         "leg (default: 2 quick, 4 full)")
    args = ap.parse_args(argv)

    print(f"sim-core benchmark ({'quick' if args.quick else 'full'} mix)")
    report = run_bench(quick=args.quick, repeats=args.repeats,
                       max_shards=args.shards)
    atomic_write_json(args.out, report)
    print(f"wrote {args.out}")

    rc = 0
    det = report["determinism"]
    if not (det["identical_jsonl"] and det["identical_final_memory"]
            and det["oracle_divergences"] == 0):
        print("FAIL: pooled core is not bit-identical to the legacy "
              "core on the fuzz corpus")
        rc = 1
    if not args.quick and report["speedup_256"] < 2.0:
        print(f"FAIL: 256-thread speedup {report['speedup_256']:.2f}x "
              "< 2x target")
        rc = 1
    sharded = report["sharded"]
    if any(r["identical_to_reference"] is False
           for r in sharded["results"]):
        print("FAIL: a sharded Field run diverged from the pooled "
              "reference")
        rc = 1
    if sharded["scaling_checked"] and not sharded["scaling_ok"]:
        print(f"FAIL: aggregate ev/s did not rise "
              f"{sharded['shard_counts'][0]} -> "
              f"{sharded['shard_counts'][-1]} shards on "
              f"{sharded['cpus']} cpus")
        rc = 1
    elif not sharded["scaling_checked"]:
        print(f"  note: shard-scaling throughput check skipped "
              f"({sharded['cpus']} cpu(s) < "
              f"{sharded['shard_counts'][-1]} shards)")
    if args.baseline:
        try:
            problems = check_baseline(report, args.baseline)
        except BaselineError as exc:
            print(f"FAIL: {exc}")
            return 1
        for p in problems:
            print(f"FAIL: {p}")
        if problems:
            rc = 1
    return rc


# ---------------------------------------------------------------------------
# pytest entry point (collected only when explicitly requested)
# ---------------------------------------------------------------------------

def test_sim_core_quick():
    """Smoke: quick mix, both cores bit-identical, pooled not slower."""
    report = run_bench(quick=True, repeats=1)
    det = report["determinism"]
    assert det["identical_jsonl"]
    assert det["identical_final_memory"]
    assert det["oracle_divergences"] == 0
    for r in report["results"]:
        assert r["identical_schedule"]
    # Every sharded row that was refereed must have matched (the
    # assertion inside measure_sharded already fired otherwise).
    assert all(r["identical_to_reference"] in (True, None)
               for r in report["sharded"]["results"])
    # Loose wall-clock floor (CI machines are noisy); the committed
    # full-mode run carries the >= 2x evidence.
    assert report["speedup_256"] > 1.0


if __name__ == "__main__":
    sys.exit(main())
