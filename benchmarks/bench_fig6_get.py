"""E1 — Figure 6 (left): GET latency improvement vs message size.

Regenerates the paper's GET panel: ~30% (GM) / ~16% (LAPI) for small
messages, ~40% in the 1-16 KB range, vanishing once bandwidth
dominates; LAPI's gain persists to megabyte sizes (HPS is 8x faster
than Myrinet, so fixed-overhead savings matter longer).
"""

from repro.experiments import fig6_get
from repro.workloads.micro import FIG6_SIZES


def test_fig6_get(benchmark, show):
    fig = benchmark.pedantic(
        lambda: fig6_get(sizes=FIG6_SIZES, reps=8),
        rounds=1, iterations=1)
    show(fig)
    rows = {r["size_bytes"]: r for r in fig.rows()}
    # Shape: GM small ~30, LAPI small ~16.
    assert 25 <= rows[16]["gm_pct"] <= 40
    assert 10 <= rows[16]["lapi_pct"] <= 24
    # Medium-size peak beats the small-message gain.
    assert rows[16384]["gm_pct"] > rows[1]["gm_pct"]
    assert rows[65536]["lapi_pct"] > rows[1]["lapi_pct"]
    # Bandwidth-dominated tail.
    assert abs(rows[4194304]["gm_pct"]) < 5
    assert abs(rows[4194304]["lapi_pct"]) < 5
